// Trace replay: the consumer side of the record-once / replay-many
// engine. A Replayer reads either trace format (v1 flat records, v2
// frames) and feeds the reference stream to any mem.Tracer; a
// batch-capable tracer (a cache, a Bank, a ParallelBank) receives whole
// chunks, reproducing exactly the chunk boundaries of the recorded run.
// A SharedReplayer is the decode-once variant: it hands each decoded
// frame, together with its recorded instruction-clock stamp, to a
// ChunkSink exactly once — the feed for the fused cache bank, where one
// decode serves every configuration of a sweep.
//
// For v2 traces both replayers decode frames on a pool of goroutines:
// frames are self-contained, so decoding parallelizes, while delivery
// stays strictly in frame order — the consumer observes the identical
// reference stream (and identical chunk boundaries) the recording run
// produced, which is what makes replayed cache statistics bitwise equal
// to live ones.
package traceio

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"gcsim/internal/mem"
)

// ChunkSink consumes decoded trace chunks with their recorded
// instruction-clock stamps. The stamp is the value a live run's (paused)
// machine would have published at the chunk boundary; a stamp of 0 means
// the recording run had no clock. The chunk is only valid for the
// duration of the call.
type ChunkSink interface {
	ChunkBatch(refs []mem.Ref, insnsAt uint64)
}

// Replayer streams one trace into a tracer. It is single-shot: create,
// optionally SetDecoders, then Run once.
type Replayer struct {
	br       *bufio.Reader
	version  int
	decoders int
	stamp    uint64
	ran      bool

	frames uint64       // frames delivered
	decNs  atomic.Int64 // cumulative frame-decode time across the pool
}

// NewReplayer opens a trace stream, consuming and validating the magic
// header. Both format versions are accepted; Version reports which.
func NewReplayer(r io.Reader) (*Replayer, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("traceio: reading header: %w", err)
	}
	rp := &Replayer{br: br, decoders: runtime.GOMAXPROCS(0)}
	switch string(head) {
	case Magic:
		rp.version = 1
	case Magic2:
		rp.version = 2
	default:
		return nil, fmt.Errorf("traceio: not a gcsim trace file")
	}
	return rp, nil
}

// Version returns the trace format version (1 or 2).
func (rp *Replayer) Version() int { return rp.version }

// SetDecoders bounds the frame-decoding goroutine pool (default
// GOMAXPROCS). With n <= 1, Run decodes inline with no goroutines at
// all. v1 traces always replay inline (the flat record stream has no
// frame boundaries to parallelize over).
func (rp *Replayer) SetDecoders(n int) {
	if n < 1 {
		n = 1
	}
	rp.decoders = n
}

// Clock returns the instruction-clock stamp of the frame currently being
// delivered. Wire it to a bank's snapshot clock to make replayed cache
// snapshots land on the same instruction counts as a live run's: the
// stamp is updated on the delivery goroutine immediately before each
// chunk is handed to the tracer, exactly where a live run's (paused)
// machine would publish its instruction count.
func (rp *Replayer) Clock() uint64 { return rp.stamp }

// Frames returns the number of trace frames delivered so far.
func (rp *Replayer) Frames() uint64 { return rp.frames }

// DecodeSeconds returns the cumulative wall time spent decoding frames
// (varint expansion and decompression, excluding I/O and delivery). With
// a decoder pool the per-goroutine times are summed, so the total can
// exceed the elapsed wall clock.
func (rp *Replayer) DecodeSeconds() float64 { return float64(rp.decNs.Load()) / 1e9 }

// emitFunc receives each decoded chunk with its clock stamp, strictly in
// frame order, on the Run caller's goroutine.
type emitFunc func(refs []mem.Ref, insnsAt uint64)

// Run replays the whole trace into tracer, returning the number of
// references delivered. The context cancels the replay at the next frame
// boundary (v1: every mem.ChunkRefs records); the returned error then
// matches ctx.Err() under errors.Is.
func (rp *Replayer) Run(ctx context.Context, tracer mem.Tracer) (uint64, error) {
	if rp.version == 1 {
		if rp.ran {
			return 0, fmt.Errorf("traceio: Replayer is single-shot")
		}
		rp.ran = true
		return rp.runV1(ctx, tracer)
	}
	bt, _ := tracer.(mem.BatchTracer)
	return rp.run(ctx, func(refs []mem.Ref, insnsAt uint64) {
		rp.stamp = insnsAt
		deliver(tracer, bt, refs)
	})
}

// run replays a v2 trace through emit, inline or via the decoder pool.
func (rp *Replayer) run(ctx context.Context, emit emitFunc) (uint64, error) {
	if rp.ran {
		return 0, fmt.Errorf("traceio: Replayer is single-shot")
	}
	rp.ran = true
	if rp.decoders > 1 {
		return rp.runParallel(ctx, emit)
	}
	return rp.runSerial(ctx, emit)
}

// deliver hands one decoded chunk to the tracer, batch-wise if possible.
func deliver(tracer mem.Tracer, bt mem.BatchTracer, refs []mem.Ref) {
	if bt != nil {
		bt.RefBatch(refs)
		return
	}
	for _, r := range refs {
		tracer.Ref(r.Addr(), r.Write(), r.Collector())
	}
}

func interrupted(ctx context.Context, count uint64) error {
	return fmt.Errorf("traceio: replay interrupted after %d refs: %w", count, ctx.Err())
}

// runV1 replays the flat v1 record stream.
func (rp *Replayer) runV1(ctx context.Context, tracer mem.Tracer) (uint64, error) {
	var addr, count uint64
	for {
		if count%mem.ChunkRefs == 0 && ctx.Err() != nil {
			return count, interrupted(ctx, count)
		}
		flags, err := rp.br.ReadByte()
		if err == io.EOF {
			return count, nil
		}
		if err != nil {
			return count, fmt.Errorf("traceio: %w", err)
		}
		delta, err := binary.ReadVarint(rp.br)
		if err != nil {
			return count, fmt.Errorf("traceio: truncated record %d: %w", count, err)
		}
		addr = uint64(int64(addr) + delta)
		tracer.Ref(addr, flags&flagWrite != 0, flags&flagCollector != 0)
		count++
	}
}

// runSerial replays a v2 trace inline: one goroutine reads, decodes, and
// delivers, reusing a single payload buffer and chunk.
func (rp *Replayer) runSerial(ctx context.Context, emit emitFunc) (uint64, error) {
	var (
		dec    frameDecoder
		f      frame
		chunk  = make([]mem.Ref, 0, mem.ChunkRefs)
		buf    []byte
		count  uint64
		runCRC uint32
	)
	for {
		if err := ctx.Err(); err != nil {
			return count, interrupted(ctx, count)
		}
		trailer, total, wantCRC, err := readFrame(rp.br, &f, buf)
		if err != nil {
			return count, err
		}
		if trailer {
			if total != count {
				return count, fmt.Errorf("traceio: trailer claims %d refs, replayed %d", total, count)
			}
			if wantCRC != runCRC {
				return count, fmt.Errorf("traceio: running CRC mismatch")
			}
			return count, nil
		}
		buf = f.payload[:cap(f.payload)]
		runCRC = crc32.Update(runCRC, crc32.IEEETable, f.payload)
		t0 := time.Now()
		refs, err := dec.decode(&f, chunk[:0])
		rp.decNs.Add(int64(time.Since(t0)))
		if err != nil {
			return count, err
		}
		rp.frames++
		emit(refs, f.insnsAt)
		count += uint64(len(refs))
		chunk = refs // keep the buffer if decode grew it
	}
}

// decodeJob carries one frame through the decoder pool. out is buffered,
// so a decoder never blocks publishing its result.
type decodeJob struct {
	f   frame
	out chan decodeResult
}

type decodeResult struct {
	refs []mem.Ref
	err  error
}

// readerOutcome is the frame reader's final word: its error (nil on a
// clean trailer) after it has verified the trailer's totals itself.
type readerOutcome struct{ err error }

// runParallel replays a v2 trace with a decoder pool. The reader
// goroutine streams frames (verifying the running CRC and trailer), the
// pool decodes them concurrently, and the calling goroutine delivers
// decoded chunks strictly in frame order.
func (rp *Replayer) runParallel(ctx context.Context, emit emitFunc) (uint64, error) {
	nd := rp.decoders

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	work := make(chan *decodeJob, nd)
	order := make(chan *decodeJob, 2*nd)
	outcome := make(chan readerOutcome, 1)

	// Reader: frame headers and payloads are consumed sequentially (the
	// stream dictates it), but that is cheap — the varint decode and
	// decompression, where the time goes, happen in the pool.
	go func() {
		defer close(order)
		defer close(work)
		var (
			runCRC uint32
			total  uint64
		)
		for {
			j := &decodeJob{out: make(chan decodeResult, 1)}
			trailer, want, wantCRC, err := readFrame(rp.br, &j.f, nil)
			if err != nil {
				outcome <- readerOutcome{err}
				return
			}
			if trailer {
				switch {
				case want != total:
					err = fmt.Errorf("traceio: trailer claims %d refs, trace frames carry %d", want, total)
				case wantCRC != runCRC:
					err = fmt.Errorf("traceio: running CRC mismatch")
				}
				outcome <- readerOutcome{err}
				return
			}
			runCRC = crc32.Update(runCRC, crc32.IEEETable, j.f.payload)
			total += uint64(j.f.refs)
			select {
			case work <- j:
			case <-ctx.Done():
				outcome <- readerOutcome{interrupted(ctx, 0)}
				return
			}
			select {
			case order <- j:
			case <-ctx.Done():
				outcome <- readerOutcome{interrupted(ctx, 0)}
				return
			}
		}
	}()

	for i := 0; i < nd; i++ {
		go func() {
			var dec frameDecoder
			for j := range work {
				refs := make([]mem.Ref, 0, j.f.refs)
				t0 := time.Now()
				refs, err := dec.decode(&j.f, refs)
				rp.decNs.Add(int64(time.Since(t0)))
				j.out <- decodeResult{refs, err}
			}
		}()
	}

	// Delivery, on the calling goroutine, in frame order. On error we
	// cancel and keep draining order so the reader and pool shut down
	// without blocking.
	var (
		count uint64
		derr  error
	)
	for j := range order {
		res := <-j.out
		if derr != nil {
			continue
		}
		if res.err != nil {
			derr = res.err
			cancel()
			continue
		}
		if err := ctx.Err(); err != nil {
			derr = interrupted(ctx, count)
			cancel()
			continue
		}
		rp.frames++
		emit(res.refs, j.f.insnsAt)
		count += uint64(len(res.refs))
	}
	oc := <-outcome
	if derr == nil {
		derr = oc.err
	}
	if derr == nil && ctx.Err() != nil {
		derr = interrupted(ctx, count)
	}
	return count, derr
}

// SharedReplayer replays one v2 trace into a ChunkSink, decoding each
// frame exactly once no matter how many cache configurations the sink
// fans the chunk out to. It refuses v1 traces — they carry no frame
// stamps, so a shared replay could not reproduce snapshot clocks; callers
// fall back to a Replayer per config (or a Bank) for those. Like
// Replayer, it is single-shot.
type SharedReplayer struct {
	rp *Replayer
}

// NewSharedReplayer opens a v2 trace stream for decode-once replay.
func NewSharedReplayer(r io.Reader) (*SharedReplayer, error) {
	rp, err := NewReplayer(r)
	if err != nil {
		return nil, err
	}
	if rp.version != 2 {
		return nil, fmt.Errorf("traceio: shared replay requires a v2 trace (got format v%d)", rp.version)
	}
	return &SharedReplayer{rp: rp}, nil
}

// SetDecoders bounds the frame-decoding pool (see Replayer.SetDecoders).
func (s *SharedReplayer) SetDecoders(n int) { s.rp.SetDecoders(n) }

// Run replays the whole trace into sink, returning the number of
// references delivered. Chunks arrive strictly in frame order on the
// calling goroutine, each stamped with its recorded instruction clock.
func (s *SharedReplayer) Run(ctx context.Context, sink ChunkSink) (uint64, error) {
	return s.rp.run(ctx, sink.ChunkBatch)
}

// Frames returns the number of frames decoded and delivered so far —
// with the fused bank downstream, each counts as one decode serving the
// whole sweep.
func (s *SharedReplayer) Frames() uint64 { return s.rp.Frames() }

// DecodeSeconds reports cumulative frame-decode time (see
// Replayer.DecodeSeconds).
func (s *SharedReplayer) DecodeSeconds() float64 { return s.rp.DecodeSeconds() }

// Replay streams a trace from r into tracer, returning the number of
// references replayed. Both format versions are accepted. The context
// cancels the replay at the next frame boundary. Replay decodes inline;
// use a Replayer directly for pooled decoding of v2 traces.
func Replay(ctx context.Context, r io.Reader, tracer mem.Tracer) (uint64, error) {
	rp, err := NewReplayer(r)
	if err != nil {
		return 0, err
	}
	rp.SetDecoders(1)
	return rp.Run(ctx, tracer)
}
