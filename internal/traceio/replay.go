// Trace replay: the consumer side of the record-once / replay-many
// engine. A Replayer reads either trace format (v1 flat records, v2
// frames) and feeds the reference stream to any mem.Tracer; a
// batch-capable tracer (a cache, a Bank, a ParallelBank) receives whole
// chunks, reproducing exactly the chunk boundaries of the recorded run.
//
// For v2 traces the Replayer decodes frames on a pool of goroutines:
// frames are self-contained, so decoding parallelizes, while delivery
// stays strictly in frame order — the consumer observes the identical
// reference stream (and identical chunk boundaries) the recording run
// produced, which is what makes replayed cache statistics bitwise equal
// to live ones.
package traceio

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"

	"gcsim/internal/mem"
)

// Replayer streams one trace into a tracer. It is single-shot: create,
// optionally SetDecoders, then Run once.
type Replayer struct {
	br       *bufio.Reader
	version  int
	decoders int
	stamp    uint64
	ran      bool
}

// NewReplayer opens a trace stream, consuming and validating the magic
// header. Both format versions are accepted; Version reports which.
func NewReplayer(r io.Reader) (*Replayer, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("traceio: reading header: %w", err)
	}
	rp := &Replayer{br: br, decoders: runtime.GOMAXPROCS(0)}
	switch string(head) {
	case Magic:
		rp.version = 1
	case Magic2:
		rp.version = 2
	default:
		return nil, fmt.Errorf("traceio: not a gcsim trace file")
	}
	return rp, nil
}

// Version returns the trace format version (1 or 2).
func (rp *Replayer) Version() int { return rp.version }

// SetDecoders bounds the frame-decoding goroutine pool (default
// GOMAXPROCS). With n <= 1, Run decodes inline with no goroutines at
// all. v1 traces always replay inline (the flat record stream has no
// frame boundaries to parallelize over).
func (rp *Replayer) SetDecoders(n int) {
	if n < 1 {
		n = 1
	}
	rp.decoders = n
}

// Clock returns the instruction-clock stamp of the frame currently being
// delivered. Wire it to a bank's snapshot clock to make replayed cache
// snapshots land on the same instruction counts as a live run's: the
// stamp is updated on the delivery goroutine immediately before each
// chunk is handed to the tracer, exactly where a live run's (paused)
// machine would publish its instruction count.
func (rp *Replayer) Clock() uint64 { return rp.stamp }

// Run replays the whole trace into tracer, returning the number of
// references delivered. The context cancels the replay at the next frame
// boundary (v1: every mem.ChunkRefs records); the returned error then
// matches ctx.Err() under errors.Is.
func (rp *Replayer) Run(ctx context.Context, tracer mem.Tracer) (uint64, error) {
	if rp.ran {
		return 0, fmt.Errorf("traceio: Replayer is single-shot")
	}
	rp.ran = true
	if rp.version == 1 {
		return rp.runV1(ctx, tracer)
	}
	if rp.decoders > 1 {
		return rp.runParallel(ctx, tracer)
	}
	return rp.runSerial(ctx, tracer)
}

// deliver hands one decoded chunk to the tracer, batch-wise if possible.
func deliver(tracer mem.Tracer, bt mem.BatchTracer, refs []mem.Ref) {
	if bt != nil {
		bt.RefBatch(refs)
		return
	}
	for _, r := range refs {
		tracer.Ref(r.Addr(), r.Write(), r.Collector())
	}
}

func interrupted(ctx context.Context, count uint64) error {
	return fmt.Errorf("traceio: replay interrupted after %d refs: %w", count, ctx.Err())
}

// runV1 replays the flat v1 record stream.
func (rp *Replayer) runV1(ctx context.Context, tracer mem.Tracer) (uint64, error) {
	var addr, count uint64
	for {
		if count%mem.ChunkRefs == 0 && ctx.Err() != nil {
			return count, interrupted(ctx, count)
		}
		flags, err := rp.br.ReadByte()
		if err == io.EOF {
			return count, nil
		}
		if err != nil {
			return count, fmt.Errorf("traceio: %w", err)
		}
		delta, err := binary.ReadVarint(rp.br)
		if err != nil {
			return count, fmt.Errorf("traceio: truncated record %d: %w", count, err)
		}
		addr = uint64(int64(addr) + delta)
		tracer.Ref(addr, flags&flagWrite != 0, flags&flagCollector != 0)
		count++
	}
}

// runSerial replays a v2 trace inline: one goroutine reads, decodes, and
// delivers, reusing a single payload buffer and chunk.
func (rp *Replayer) runSerial(ctx context.Context, tracer mem.Tracer) (uint64, error) {
	bt, _ := tracer.(mem.BatchTracer)
	var (
		dec    frameDecoder
		f      frame
		chunk  = make([]mem.Ref, 0, mem.ChunkRefs)
		buf    []byte
		count  uint64
		runCRC uint32
	)
	for {
		if err := ctx.Err(); err != nil {
			return count, interrupted(ctx, count)
		}
		trailer, total, wantCRC, err := readFrame(rp.br, &f, buf)
		if err != nil {
			return count, err
		}
		if trailer {
			if total != count {
				return count, fmt.Errorf("traceio: trailer claims %d refs, replayed %d", total, count)
			}
			if wantCRC != runCRC {
				return count, fmt.Errorf("traceio: running CRC mismatch")
			}
			return count, nil
		}
		buf = f.payload[:cap(f.payload)]
		runCRC = crc32.Update(runCRC, crc32.IEEETable, f.payload)
		refs, err := dec.decode(&f, chunk[:0])
		if err != nil {
			return count, err
		}
		rp.stamp = f.insnsAt
		deliver(tracer, bt, refs)
		count += uint64(len(refs))
		chunk = refs // keep the buffer if decode grew it
	}
}

// decodeJob carries one frame through the decoder pool. out is buffered,
// so a decoder never blocks publishing its result.
type decodeJob struct {
	f   frame
	out chan decodeResult
}

type decodeResult struct {
	refs []mem.Ref
	err  error
}

// readerOutcome is the frame reader's final word: its error (nil on a
// clean trailer) after it has verified the trailer's totals itself.
type readerOutcome struct{ err error }

// runParallel replays a v2 trace with a decoder pool. The reader
// goroutine streams frames (verifying the running CRC and trailer), the
// pool decodes them concurrently, and the calling goroutine delivers
// decoded chunks strictly in frame order.
func (rp *Replayer) runParallel(ctx context.Context, tracer mem.Tracer) (uint64, error) {
	bt, _ := tracer.(mem.BatchTracer)
	nd := rp.decoders

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	work := make(chan *decodeJob, nd)
	order := make(chan *decodeJob, 2*nd)
	outcome := make(chan readerOutcome, 1)

	// Reader: frame headers and payloads are consumed sequentially (the
	// stream dictates it), but that is cheap — the varint decode and
	// decompression, where the time goes, happen in the pool.
	go func() {
		defer close(order)
		defer close(work)
		var (
			runCRC uint32
			total  uint64
		)
		for {
			j := &decodeJob{out: make(chan decodeResult, 1)}
			trailer, want, wantCRC, err := readFrame(rp.br, &j.f, nil)
			if err != nil {
				outcome <- readerOutcome{err}
				return
			}
			if trailer {
				switch {
				case want != total:
					err = fmt.Errorf("traceio: trailer claims %d refs, trace frames carry %d", want, total)
				case wantCRC != runCRC:
					err = fmt.Errorf("traceio: running CRC mismatch")
				}
				outcome <- readerOutcome{err}
				return
			}
			runCRC = crc32.Update(runCRC, crc32.IEEETable, j.f.payload)
			total += uint64(j.f.refs)
			select {
			case work <- j:
			case <-ctx.Done():
				outcome <- readerOutcome{interrupted(ctx, 0)}
				return
			}
			select {
			case order <- j:
			case <-ctx.Done():
				outcome <- readerOutcome{interrupted(ctx, 0)}
				return
			}
		}
	}()

	for i := 0; i < nd; i++ {
		go func() {
			var dec frameDecoder
			for j := range work {
				refs := make([]mem.Ref, 0, j.f.refs)
				refs, err := dec.decode(&j.f, refs)
				j.out <- decodeResult{refs, err}
			}
		}()
	}

	// Delivery, on the calling goroutine, in frame order. On error we
	// cancel and keep draining order so the reader and pool shut down
	// without blocking.
	var (
		count uint64
		derr  error
	)
	for j := range order {
		res := <-j.out
		if derr != nil {
			continue
		}
		if res.err != nil {
			derr = res.err
			cancel()
			continue
		}
		if err := ctx.Err(); err != nil {
			derr = interrupted(ctx, count)
			cancel()
			continue
		}
		rp.stamp = j.f.insnsAt
		deliver(tracer, bt, res.refs)
		count += uint64(len(res.refs))
	}
	oc := <-outcome
	if derr == nil {
		derr = oc.err
	}
	if derr == nil && ctx.Err() != nil {
		derr = interrupted(ctx, count)
	}
	return count, derr
}

// Replay streams a trace from r into tracer, returning the number of
// references replayed. Both format versions are accepted. The context
// cancels the replay at the next frame boundary. Replay decodes inline;
// use a Replayer directly for pooled decoding of v2 traces.
func Replay(ctx context.Context, r io.Reader, tracer mem.Tracer) (uint64, error) {
	rp, err := NewReplayer(r)
	if err != nil {
		return 0, err
	}
	rp.SetDecoders(1)
	return rp.Run(ctx, tracer)
}
