package traceio

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"testing/quick"

	"gcsim/internal/cache"
	"gcsim/internal/gc"
	"gcsim/internal/mem"
	"gcsim/internal/vm"
)

type refRec struct {
	addr             uint64
	write, collector bool
}

type recorder struct{ refs []refRec }

func (r *recorder) Ref(addr uint64, write, collector bool) {
	r.refs = append(r.refs, refRec{addr, write, collector})
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := []refRec{
		{mem.DynBase, true, false},
		{mem.DynBase + 1, true, false},
		{mem.StackBase, false, false},
		{mem.DynBase + 100, false, true},
		{mem.StaticBase, true, true},
	}
	for _, r := range in {
		w.Ref(r.addr, r.write, r.collector)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(in)) {
		t.Errorf("Count = %d, want %d", w.Count(), len(in))
	}
	var out recorder
	n, err := Replay(context.Background(), &buf, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(in)) {
		t.Errorf("replayed %d, want %d", n, len(in))
	}
	for i, r := range in {
		if out.refs[i] != r {
			t.Errorf("record %d: got %+v, want %+v", i, out.refs[i], r)
		}
	}
}

func TestSequentialSweepCompresses(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := uint64(0); i < 10000; i++ {
		w.Ref(mem.DynBase+i, true, false)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	perRef := float64(buf.Len()-len(Magic)) / 10000
	if perRef > 2.5 {
		t.Errorf("sequential trace uses %.1f bytes/ref, want ~2", perRef)
	}
}

func TestRejectsGarbage(t *testing.T) {
	var out recorder
	if _, err := Replay(context.Background(), strings.NewReader("not a trace"), &out); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Replay(context.Background(), strings.NewReader(""), &out); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated record after a valid header.
	if _, err := Replay(context.Background(), strings.NewReader(Magic+"\x01"), &out); err == nil {
		t.Error("truncated record accepted")
	}
}

// Property: arbitrary reference sequences round-trip exactly.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(addrs []uint64, bits []bool) bool {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		var in []refRec
		for i, a := range addrs {
			r := refRec{a & (1<<50 - 1), i < len(bits) && bits[i], i%3 == 0}
			in = append(in, r)
			w.Ref(r.addr, r.write, r.collector)
		}
		if w.Flush() != nil {
			return false
		}
		var out recorder
		n, err := Replay(context.Background(), &buf, &out)
		if err != nil || n != uint64(len(in)) {
			return false
		}
		for i := range in {
			if out.refs[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// End-to-end: capturing a VM run and replaying it into a cache must give
// exactly the same statistics as simulating live.
func TestCaptureAndReplayMatchesLive(t *testing.T) {
	prog := `
		(define (build n) (if (= n 0) '() (cons n (build (- n 1)))))
		(let loop ((i 0) (acc 0))
		  (if (= i 30) acc (loop (+ i 1) (+ acc (length (build 200))))))`
	cfg := cache.Config{SizeBytes: 32 << 10, BlockBytes: 64, Policy: cache.WriteValidate}

	// Live simulation.
	live := cache.New(cfg)
	m1 := vm.NewLoaded(live, gc.NewCheney(64<<10))
	m1.MaxInsns = 500_000_000
	m1.MustEval(prog)

	// Captured trace.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	m2 := vm.NewLoaded(w, gc.NewCheney(64<<10))
	m2.MaxInsns = 500_000_000
	m2.MustEval(prog)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// Replay into a fresh cache.
	replayed := cache.New(cfg)
	n, err := Replay(context.Background(), &buf, replayed)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty trace")
	}
	if live.S != replayed.S {
		t.Errorf("replayed stats differ:\nlive:     %+v\nreplayed: %+v", live.S, replayed.S)
	}
}
