package traceio

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"gcsim/internal/cache"
	"gcsim/internal/mem"
)

func sweepConfigs8() []cache.Config {
	var cfgs []cache.Config
	for _, s := range []int{32 << 10, 64 << 10, 128 << 10, 256 << 10} {
		for _, bb := range []int{32, 64} {
			cfgs = append(cfgs, cache.Config{SizeBytes: s, BlockBytes: bb, Policy: cache.WriteValidate})
		}
	}
	return cfgs
}

// TestSharedReplayerMatchesReplayer is the decode-once golden check: one
// SharedReplayer pass into a FusedBank must produce exactly the stats and
// snapshots of a classic Replayer pass into a serial Bank — same trace,
// same clock stamps, bit for bit.
func TestSharedReplayerMatchesReplayer(t *testing.T) {
	in := makeRefs(12*mem.ChunkRefs + 123)
	var tick uint64
	data := writeV2(t, in, WriterOpts{Compress: true}, func() uint64 { tick += 5_000; return tick })
	cfgs := sweepConfigs8()

	serial := cache.NewBank(cfgs)
	rp, err := NewReplayer(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	rp.SetDecoders(1)
	serial.SetSnapshotClock(rp.Clock)
	for _, c := range serial.Caches {
		c.EnableSnapshots(7_000)
	}
	want, err := rp.Run(context.Background(), serial)
	if err != nil {
		t.Fatal(err)
	}
	if want != uint64(len(in)) {
		t.Fatalf("serial replay delivered %d refs, want %d", want, len(in))
	}

	for _, nd := range []int{1, 4} {
		sr, err := NewSharedReplayer(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		sr.SetDecoders(nd)
		fused := cache.NewFusedBank(cfgs)
		for _, c := range fused.Caches {
			c.EnableSnapshots(7_000)
		}
		got, err := sr.Run(context.Background(), fused)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("decoders=%d: shared replay delivered %d refs, want %d", nd, got, want)
		}
		wantFrames := uint64((len(in) + mem.ChunkRefs - 1) / mem.ChunkRefs)
		if sr.Frames() != wantFrames {
			t.Fatalf("decoders=%d: Frames = %d, want %d", nd, sr.Frames(), wantFrames)
		}
		if sr.DecodeSeconds() <= 0 {
			t.Errorf("decoders=%d: DecodeSeconds = %v, want > 0", nd, sr.DecodeSeconds())
		}
		for i, sc := range serial.Caches {
			fc := fused.Caches[i]
			if sc.S != fc.S {
				t.Errorf("decoders=%d config %v: serial %+v != fused %+v",
					nd, sc.Config(), sc.S, fc.S)
			}
			ss, fs := sc.Snapshots(), fc.Snapshots()
			if len(ss) == 0 || len(ss) != len(fs) {
				t.Fatalf("decoders=%d config %v: %d serial snapshots vs %d fused",
					nd, sc.Config(), len(ss), len(fs))
			}
			for j := range ss {
				if ss[j] != fs[j] {
					t.Fatalf("decoders=%d config %v snapshot %d: %+v != %+v",
						nd, sc.Config(), j, ss[j], fs[j])
				}
			}
		}
	}
}

// TestSharedReplayerRejectsV1 pins the fallback rule: v1 traces have no
// frame stamps and must be refused, not silently degraded.
func TestSharedReplayerRejectsV1(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range makeRefs(100) {
		w.Ref(r.Addr(), r.Write(), r.Collector())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSharedReplayer(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("NewSharedReplayer accepted a v1 trace")
	}
	if _, err := NewSharedReplayer(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("NewSharedReplayer accepted junk")
	}
}

type countSink struct {
	n      uint64
	chunks int
	cancel func()
	at     int
}

func (s *countSink) ChunkBatch(refs []mem.Ref, insnsAt uint64) {
	s.n += uint64(len(refs))
	s.chunks++
	if s.cancel != nil && s.chunks == s.at {
		s.cancel()
	}
}

// TestSharedReplayerCancelAndSingleShot covers context cancellation at a
// frame boundary and the single-shot contract.
func TestSharedReplayerCancelAndSingleShot(t *testing.T) {
	in := makeRefs(50 * mem.ChunkRefs)
	data := writeV2(t, in, WriterOpts{}, nil)

	for _, nd := range []int{1, 4} {
		sr, err := NewSharedReplayer(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		sr.SetDecoders(nd)
		ctx, cancel := context.WithCancel(context.Background())
		sink := &countSink{cancel: cancel, at: 3}
		n, err := sr.Run(ctx, sink)
		cancel()
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("decoders=%d: cancelled shared replay: err=%v", nd, err)
		}
		if n >= uint64(len(in)) {
			t.Fatalf("decoders=%d: replay did not stop early (%d refs)", nd, n)
		}
	}

	sr, err := NewSharedReplayer(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Run(context.Background(), &countSink{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Run(context.Background(), &countSink{}); err == nil {
		t.Fatal("second Run succeeded")
	}
}

// TestSharedReplayerCorruptionDetected: the shared path keeps the framing
// integrity checks (CRC, trailer totals).
func TestSharedReplayerCorruptionDetected(t *testing.T) {
	valid := writeV2(t, makeRefs(2*mem.ChunkRefs), WriterOpts{}, nil)
	data := append([]byte(nil), valid...)
	data[len(Magic2)+20] ^= 0x40
	for _, nd := range []int{1, 4} {
		sr, err := NewSharedReplayer(bytes.NewReader(data))
		if err != nil {
			continue
		}
		sr.SetDecoders(nd)
		if _, err := sr.Run(context.Background(), &countSink{}); err == nil {
			t.Errorf("decoders=%d: corruption not detected", nd)
		}
	}
}
