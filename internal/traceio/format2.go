// Trace format v2: length-prefixed frames of packed mem.Ref chunks.
//
// Where format v1 is a flat per-reference record stream (one virtual
// Tracer call per reference to write, one per reference to read), v2 is
// framed: the writer consumes whole chunks from the batch reference
// pipeline (mem.BatchTracer), encodes each chunk into one self-contained
// frame, and the replayer can decode frames on a pool of goroutines
// because every frame restarts its address-delta chain from zero.
//
// Layout, after the 12-byte magic "GCSIMTRACE2\n":
//
//	frame    := refCount:uvarint(>0) flags:byte insnsAt:uvarint
//	            payloadLen:uvarint crc32:4×LE payload:bytes
//	trailer  := 0:uvarint totalRefs:uvarint runningCRC:4×LE
//
// The payload encodes refCount references, each as a single uvarint v:
// bits 0-1 are the reference flags (bit 0 = write, bit 1 = collector),
// bit 2 selects one of two address-delta chains — 0 for stack-segment
// addresses (below mem.StaticBase), 1 for static/heap addresses — and
// v>>3 is the zigzag-encoded delta of the word address from the previous
// reference on the same chain in the same frame, wrapping in the 61-bit
// address ring (each chain starts at address zero). Interpreted programs
// alternate stack and heap references constantly; giving each segment its
// own delta chain keeps both chains local, so the common reference costs
// one payload byte and the decoder's hot loop reads one short varint per
// reference. When frame flag bit 0 is set the payload is
// DEFLATE-compressed; the stored length and CRC always describe the
// stored (possibly compressed) bytes.
//
// insnsAt is the VM instruction clock at the moment the chunk was sealed
// (zero when the writer has no clock). Replaying hands the stamp back
// through Replayer.Clock, so periodic cache snapshots taken at chunk
// boundaries land on exactly the instruction counts a live run would use.
//
// The trailer carries the total reference count and the running CRC32 of
// every stored payload, so truncation — even at a frame boundary — is
// always detected.
package traceio

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"

	"gcsim/internal/mem"
)

// Magic2 identifies format v2 trace files.
const Magic2 = "GCSIMTRACE2\n"

// FormatVersion is the version new traces are written in.
const FormatVersion = 2

// frameCompressed marks a DEFLATE-compressed frame payload.
const frameCompressed = 1 << 0

// MaxFrameRefs bounds the reference count of a single frame. The writer
// never exceeds mem.ChunkRefs; the bound exists so a corrupt or hostile
// header cannot make the replayer allocate an absurd chunk.
const MaxFrameRefs = 1 << 16

// maxRefBytes is the worst-case encoded size of one reference: a single
// full-width varint carrying the flag bits and the address delta.
const maxRefBytes = binary.MaxVarintLen64

// addrMask bounds the 61-bit address ring reference records encode in.
// Deltas are computed modulo 1<<61, so their zigzag encoding fits in 61
// bits and v = zigzag<<3|chain<<2|flags never overflows uint64. Packed
// mem.Ref addresses are nominally 62-bit, but the simulated address space
// (mem.StackBase … mem.DynBase plus heap) is far below 2^61; the writer
// rejects addresses outside the ring rather than corrupt a trace.
const addrMask = 1<<61 - 1

// WriterOpts configures a BatchWriter.
type WriterOpts struct {
	// Compress enables per-frame DEFLATE compression (each frame keeps
	// whichever of the raw and compressed encodings is smaller).
	Compress bool
}

// BatchWriter streams references to w in format v2, one frame per chunk.
// It implements both mem.BatchTracer (the fast path: the Memory's chunk
// pipeline hands over sealed chunks and each becomes one frame) and
// mem.Tracer (stragglers are staged into chunks internally). Call Close
// when the run completes: it seals any staged references, writes the
// trailer, and reports any deferred write error.
type BatchWriter struct {
	w      *bufio.Writer
	opts   WriterOpts
	clock  func() uint64
	count  uint64
	runCRC uint32
	err    error
	closed bool

	staged []mem.Ref    // per-ref Tracer fallback staging
	enc    []byte       // raw payload scratch
	cmp    bytes.Buffer // compressed payload scratch
	fw     *flate.Writer
}

// NewBatchWriter starts a v2 trace on w.
func NewBatchWriter(w io.Writer, opts WriterOpts) (*BatchWriter, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(Magic2); err != nil {
		return nil, fmt.Errorf("traceio: writing header: %w", err)
	}
	return &BatchWriter{w: bw, opts: opts}, nil
}

// SetClock installs the instruction clock used to stamp frames. The
// experiment engine wires it to the machine's instruction counter, so the
// stamps equal what a live sweep's snapshot clock would read at each
// chunk boundary. Must be set before the first reference.
func (t *BatchWriter) SetClock(clock func() uint64) { t.clock = clock }

// Count returns the number of references written so far.
func (t *BatchWriter) Count() uint64 { return t.count }

// Err returns the first deferred write error, if any.
func (t *BatchWriter) Err() error {
	if t.err != nil {
		return fmt.Errorf("traceio: %w", t.err)
	}
	return nil
}

// RefBatch implements mem.BatchTracer: each chunk becomes one frame
// (chunks larger than mem.ChunkRefs are split, so frames stay bounded).
func (t *BatchWriter) RefBatch(refs []mem.Ref) {
	for len(refs) > mem.ChunkRefs {
		t.writeFrame(refs[:mem.ChunkRefs])
		refs = refs[mem.ChunkRefs:]
	}
	t.writeFrame(refs)
}

// Ref implements mem.Tracer for per-reference producers; references are
// staged into chunk-sized frames internally.
func (t *BatchWriter) Ref(addr uint64, write, collector bool) {
	if t.staged == nil {
		t.staged = make([]mem.Ref, 0, mem.ChunkRefs)
	}
	t.staged = append(t.staged, mem.MakeRef(addr, write, collector))
	if len(t.staged) == cap(t.staged) {
		t.writeFrame(t.staged)
		t.staged = t.staged[:0]
	}
}

// writeFrame encodes and writes one frame.
func (t *BatchWriter) writeFrame(refs []mem.Ref) {
	if t.err != nil || t.closed || len(refs) == 0 {
		return
	}
	if cap(t.enc) < len(refs)*maxRefBytes {
		t.enc = make([]byte, 0, len(refs)*maxRefBytes)
	}
	// Encode with direct indexed writes into the pre-sized buffer rather
	// than binary.AppendUvarint: the append form re-checks capacity per
	// byte and defeats inlining, and this loop runs once per captured
	// reference — it is the measured hot spot of live capture. The byte
	// output is identical to AppendUvarint's.
	buf := t.enc[:cap(t.enc)]
	j := 0
	// The two delta-chain cursors live in locals, not an indexed array, so
	// the loop-carried dependency runs through registers instead of a
	// store-to-load round trip per reference.
	var prev0, prev1 uint64
	for _, r := range refs {
		addr := r.Addr()
		if addr > addrMask {
			t.err = fmt.Errorf("reference address %#x outside the 61-bit trace ring", addr)
			return
		}
		var d, chainBit uint64
		if addr >= mem.StaticBase {
			d = (addr - prev1) & addrMask
			prev1 = addr
			chainBit = 1 << 2
		} else {
			d = (addr - prev0) & addrMask
			prev0 = addr
		}
		s := int64(d<<3) >> 3 // sign-extend the 61-bit ring delta
		v := (uint64(s<<1)^uint64(s>>63))<<3 | chainBit | uint64(r.Flags())
		switch {
		case v < 1<<7: // deltas within ±7 words — most stack traffic
			buf[j] = byte(v)
			j++
		case v < 1<<14: // within ±1Ki words — locals and nearby heap
			buf[j] = byte(v) | 0x80
			buf[j+1] = byte(v >> 7)
			j += 2
		default:
			for v >= 0x80 {
				buf[j] = byte(v) | 0x80
				j++
				v >>= 7
			}
			buf[j] = byte(v)
			j++
		}
	}
	enc := buf[:j]
	t.enc = enc

	payload := enc
	var flags byte
	if t.opts.Compress {
		t.cmp.Reset()
		if t.fw == nil {
			t.fw, _ = flate.NewWriter(&t.cmp, flate.BestSpeed)
		} else {
			t.fw.Reset(&t.cmp)
		}
		if _, err := t.fw.Write(enc); err == nil && t.fw.Close() == nil && t.cmp.Len() < len(enc) {
			payload = t.cmp.Bytes()
			flags |= frameCompressed
		}
	}

	crc := crc32.ChecksumIEEE(payload)
	t.runCRC = crc32.Update(t.runCRC, crc32.IEEETable, payload)
	var insnsAt uint64
	if t.clock != nil {
		insnsAt = t.clock()
	}

	var hdr [3*binary.MaxVarintLen64 + 5]byte
	h := binary.AppendUvarint(hdr[:0], uint64(len(refs)))
	h = append(h, flags)
	h = binary.AppendUvarint(h, insnsAt)
	h = binary.AppendUvarint(h, uint64(len(payload)))
	h = binary.LittleEndian.AppendUint32(h, crc)
	if _, err := t.w.Write(h); err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(payload); err != nil {
		t.err = err
		return
	}
	t.count += uint64(len(refs))
}

// Close seals any staged references, writes the trailer, and flushes.
// The trace is complete only if Close returns nil. Close is idempotent.
func (t *BatchWriter) Close() error {
	if t.closed {
		return t.Err()
	}
	if len(t.staged) > 0 {
		t.writeFrame(t.staged)
		t.staged = t.staged[:0]
	}
	t.closed = true
	if t.err != nil {
		return t.Err()
	}
	var hdr [binary.MaxVarintLen64 + 5]byte
	h := binary.AppendUvarint(hdr[:0], 0)
	h = binary.AppendUvarint(h, t.count)
	h = binary.LittleEndian.AppendUint32(h, t.runCRC)
	if _, err := t.w.Write(h); err != nil {
		t.err = err
		return t.Err()
	}
	if err := t.w.Flush(); err != nil {
		t.err = err
	}
	return t.Err()
}

// frame is one decoded frame header plus its stored payload.
type frame struct {
	refs       int
	compressed bool
	insnsAt    uint64
	crc        uint32
	payload    []byte
}

// readFrame reads the next frame header and payload from br. It returns
// trailer=true (with the trailer's total count and running CRC) at the
// end-of-trace marker. When reuse is non-nil, the payload is read into it
// (growing as needed) instead of a fresh allocation — the serial replay
// path uses this; the parallel path hands each payload to a decoder
// goroutine and must not reuse the buffer.
func readFrame(br *bufio.Reader, f *frame, reuse []byte) (trailer bool, total uint64, runCRC uint32, err error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return false, 0, 0, fmt.Errorf("traceio: truncated trace: missing trailer")
		}
		return false, 0, 0, fmt.Errorf("traceio: frame header: %w", err)
	}
	if n == 0 {
		total, err = binary.ReadUvarint(br)
		if err != nil {
			return false, 0, 0, fmt.Errorf("traceio: truncated trailer: %w", err)
		}
		var crcb [4]byte
		if _, err := io.ReadFull(br, crcb[:]); err != nil {
			return false, 0, 0, fmt.Errorf("traceio: truncated trailer: %w", err)
		}
		if _, err := br.ReadByte(); err != io.EOF {
			return false, 0, 0, fmt.Errorf("traceio: data after trailer")
		}
		return true, total, binary.LittleEndian.Uint32(crcb[:]), nil
	}
	if n > MaxFrameRefs {
		return false, 0, 0, fmt.Errorf("traceio: frame claims %d refs (max %d)", n, MaxFrameRefs)
	}
	flags, err := br.ReadByte()
	if err != nil {
		return false, 0, 0, fmt.Errorf("traceio: truncated frame header: %w", err)
	}
	if flags&^frameCompressed != 0 {
		return false, 0, 0, fmt.Errorf("traceio: unknown frame flags %#x", flags)
	}
	insnsAt, err := binary.ReadUvarint(br)
	if err != nil {
		return false, 0, 0, fmt.Errorf("traceio: truncated frame header: %w", err)
	}
	plen, err := binary.ReadUvarint(br)
	if err != nil {
		return false, 0, 0, fmt.Errorf("traceio: truncated frame header: %w", err)
	}
	if plen == 0 || plen > uint64(n)*maxRefBytes {
		return false, 0, 0, fmt.Errorf("traceio: frame payload length %d out of range for %d refs", plen, n)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(br, crcb[:]); err != nil {
		return false, 0, 0, fmt.Errorf("traceio: truncated frame header: %w", err)
	}
	payload := reuse
	if uint64(cap(payload)) < plen {
		payload = make([]byte, plen)
	}
	payload = payload[:plen]
	if _, err := io.ReadFull(br, payload); err != nil {
		return false, 0, 0, fmt.Errorf("traceio: truncated frame payload: %w", err)
	}
	f.refs = int(n)
	f.compressed = flags&frameCompressed != 0
	f.insnsAt = insnsAt
	f.crc = binary.LittleEndian.Uint32(crcb[:])
	f.payload = payload
	return false, 0, 0, nil
}

// frameDecoder turns stored frames into packed refs. Each decoder
// goroutine owns one (the flate reader and scratch buffers are reused
// across frames but are not safe for concurrent use).
type frameDecoder struct {
	raw []byte // decompression scratch
	src bytes.Reader
	fr  io.ReadCloser
}

// decode appends f's references to dst and returns it. It verifies the
// stored payload CRC and every structural invariant of the encoding, so
// corruption surfaces as an error rather than a bogus reference stream.
func (d *frameDecoder) decode(f *frame, dst []mem.Ref) ([]mem.Ref, error) {
	if crc32.ChecksumIEEE(f.payload) != f.crc {
		return dst, fmt.Errorf("traceio: frame CRC mismatch")
	}
	raw := f.payload
	if f.compressed {
		d.src.Reset(f.payload)
		if d.fr == nil {
			d.fr = flate.NewReader(&d.src)
		} else if err := d.fr.(flate.Resetter).Reset(&d.src, nil); err != nil {
			return dst, fmt.Errorf("traceio: flate reset: %w", err)
		}
		max := f.refs * maxRefBytes
		if cap(d.raw) < max+1 {
			d.raw = make([]byte, max+1)
		}
		n, err := io.ReadFull(d.fr, d.raw[:max+1])
		if err != io.ErrUnexpectedEOF && err != io.EOF {
			if err == nil {
				return dst, fmt.Errorf("traceio: frame decompresses beyond %d bytes", max)
			}
			return dst, fmt.Errorf("traceio: frame decompression: %w", err)
		}
		raw = d.raw[:n]
	}
	base := len(dst)
	need := base + f.refs
	if cap(dst) < need {
		grown := make([]mem.Ref, base, need)
		copy(grown, dst)
		dst = grown
	}
	out := dst[:need]
	var prev [2]uint64
	i, nraw := 0, len(raw)
	for k := base; k < need; k++ {
		// Hot loop: one varint per reference. While at least 8 payload
		// bytes remain the whole varint is extracted from a single
		// unaligned load — one byte covers the dominant small-delta case,
		// and longer records avoid byte-at-a-time bounds checks.
		var v uint64
		if i+8 <= nraw {
			x := binary.LittleEndian.Uint64(raw[i:])
			if x&0x80 == 0 {
				v = x & 0x7f
				i++
			} else if stop := ^x & 0x8080808080808080; stop != 0 {
				n := bits.TrailingZeros64(stop) >> 3 // varint length - 1, in [1,7]
				for j := n; j >= 0; j-- {
					v = v<<7 | (x>>(uint(j)*8))&0x7f
				}
				i += n + 1
			} else {
				u, n := binary.Uvarint(raw[i:])
				if n <= 0 {
					return out[:k], fmt.Errorf("traceio: bad reference record %d of %d", k-base, f.refs)
				}
				v = u
				i += n
			}
		} else {
			u, n := binary.Uvarint(raw[i:])
			if n <= 0 {
				return out[:k], fmt.Errorf("traceio: bad reference record %d of %d", k-base, f.refs)
			}
			v = u
			i += n
		}
		zz := v >> 3
		chain := v >> 2 & 1
		a := (prev[chain] + uint64(int64(zz>>1)^-int64(zz&1))) & addrMask
		prev[chain] = a
		out[k] = mem.Ref(a) | refFlagTab[v&3]
	}
	if i != nraw {
		return out[:base], fmt.Errorf("traceio: %d trailing payload bytes", nraw-i)
	}
	return out, nil
}

// refFlagTab maps the two low flag bits of a reference record to packed
// mem.Ref flag bits (the layout mem.MakeRefFlags implements), keeping the
// decoder's hot loop to a single indexed OR.
var refFlagTab = [4]mem.Ref{0, mem.RefWrite, mem.RefCollector, mem.RefWrite | mem.RefCollector}

var _ mem.Tracer = (*BatchWriter)(nil)
var _ mem.BatchTracer = (*BatchWriter)(nil)
