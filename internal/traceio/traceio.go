// Package traceio captures and replays reference traces, supporting the
// paper's methodology — trace-driven cache simulation — without re-running
// the virtual machine. A BatchWriter records every reference a Memory
// emits (format v2, framed — see format2.go); a trace file can later be
// replayed into any tracer (a cache, a bank, a behaviour analyzer) with
// Replay or a Replayer.
//
// This file is the legacy v1 format: a magic header, then one flat record
// per reference — a flag byte (write/collector bits) followed by the
// zigzag-varint delta of the word address from the previous record.
// Sequential allocation sweeps compress to ~2 bytes per reference. v1 is
// kept writable for compatibility tests and readable forever; new traces
// are written in format v2.
package traceio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"gcsim/internal/mem"
)

// Magic identifies format v1 trace files.
const Magic = "GCSIMTRACE1\n"

const (
	flagWrite     = 1 << 0
	flagCollector = 1 << 1
)

// Writer streams references to an io.Writer. It implements mem.Tracer, so
// it can be installed directly on a Memory (or combined with other tracers
// through core.MultiTracer). Call Flush when the run completes.
type Writer struct {
	w        *bufio.Writer
	prevAddr uint64
	count    uint64
	err      error
	buf      [binary.MaxVarintLen64 + 1]byte
}

// NewWriter starts a trace on w.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, fmt.Errorf("traceio: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Ref implements mem.Tracer.
func (t *Writer) Ref(addr uint64, write, collector bool) {
	if t.err != nil {
		return
	}
	var flags byte
	if write {
		flags |= flagWrite
	}
	if collector {
		flags |= flagCollector
	}
	t.buf[0] = flags
	delta := int64(addr) - int64(t.prevAddr)
	n := binary.PutVarint(t.buf[1:], delta)
	if _, err := t.w.Write(t.buf[:1+n]); err != nil {
		t.err = err
		return
	}
	t.prevAddr = addr
	t.count++
}

// Count returns the number of references recorded.
func (t *Writer) Count() uint64 { return t.count }

// Flush completes the trace and reports any deferred write error.
func (t *Writer) Flush() error {
	if t.err != nil {
		return fmt.Errorf("traceio: %w", t.err)
	}
	return t.w.Flush()
}

var _ mem.Tracer = (*Writer)(nil)
