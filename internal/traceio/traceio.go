// Package traceio captures and replays reference traces, supporting the
// paper's methodology — trace-driven cache simulation — without re-running
// the virtual machine. A Writer records every reference a Memory emits; a
// trace file can later be replayed into any tracer (a cache, a bank, a
// behaviour analyzer) with Replay.
//
// The format is compact and streaming: a magic header, then one record per
// reference — a flag byte (write/collector bits) followed by the
// zigzag-varint delta of the word address from the previous record.
// Sequential allocation sweeps compress to ~2 bytes per reference.
package traceio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"gcsim/internal/mem"
)

// Magic identifies trace files, with a format version.
const Magic = "GCSIMTRACE1\n"

const (
	flagWrite     = 1 << 0
	flagCollector = 1 << 1
)

// Writer streams references to an io.Writer. It implements mem.Tracer, so
// it can be installed directly on a Memory (or combined with other tracers
// through core.MultiTracer). Call Flush when the run completes.
type Writer struct {
	w        *bufio.Writer
	prevAddr uint64
	count    uint64
	err      error
	buf      [binary.MaxVarintLen64 + 1]byte
}

// NewWriter starts a trace on w.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, fmt.Errorf("traceio: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Ref implements mem.Tracer.
func (t *Writer) Ref(addr uint64, write, collector bool) {
	if t.err != nil {
		return
	}
	var flags byte
	if write {
		flags |= flagWrite
	}
	if collector {
		flags |= flagCollector
	}
	t.buf[0] = flags
	delta := int64(addr) - int64(t.prevAddr)
	n := binary.PutVarint(t.buf[1:], delta)
	if _, err := t.w.Write(t.buf[:1+n]); err != nil {
		t.err = err
		return
	}
	t.prevAddr = addr
	t.count++
}

// Count returns the number of references recorded.
func (t *Writer) Count() uint64 { return t.count }

// Flush completes the trace and reports any deferred write error.
func (t *Writer) Flush() error {
	if t.err != nil {
		return fmt.Errorf("traceio: %w", t.err)
	}
	return t.w.Flush()
}

// Replay streams a trace from r into tracer, returning the number of
// references replayed.
func Replay(r io.Reader, tracer mem.Tracer) (uint64, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return 0, fmt.Errorf("traceio: reading header: %w", err)
	}
	if string(head) != Magic {
		return 0, errors.New("traceio: not a gcsim trace file")
	}
	var addr uint64
	var count uint64
	for {
		flags, err := br.ReadByte()
		if err == io.EOF {
			return count, nil
		}
		if err != nil {
			return count, fmt.Errorf("traceio: %w", err)
		}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return count, fmt.Errorf("traceio: truncated record %d: %w", count, err)
		}
		addr = uint64(int64(addr) + delta)
		tracer.Ref(addr, flags&flagWrite != 0, flags&flagCollector != 0)
		count++
	}
}

var _ mem.Tracer = (*Writer)(nil)
