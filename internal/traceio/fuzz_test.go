package traceio

import (
	"bytes"
	"context"
	"testing"

	"gcsim/internal/mem"
)

// FuzzReplay feeds arbitrary bytes to the replayer: truncated, bit-flipped,
// or hostile traces must surface as errors, never as panics, runaway
// allocations, or hangs — for both the inline and the pooled decoder paths.
func FuzzReplay(f *testing.F) {
	refs := makeRefs(2*mem.ChunkRefs + 37)
	for _, opts := range []WriterOpts{{}, {Compress: true}} {
		var buf bytes.Buffer
		w, err := NewBatchWriter(&buf, opts)
		if err != nil {
			f.Fatal(err)
		}
		w.SetClock(func() uint64 { return 12345 })
		w.RefBatch(refs)
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2])
	}
	// A v1 trace and assorted junk.
	{
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			f.Fatal(err)
		}
		for _, r := range refs[:100] {
			w.Ref(r.Addr(), r.Write(), r.Collector())
		}
		if err := w.Flush(); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(Magic2))
	f.Add([]byte(Magic2 + "\x01\x00\x00\x01"))
	f.Add([]byte("not a trace at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, nd := range []int{1, 4} {
			rp, err := NewReplayer(bytes.NewReader(data))
			if err != nil {
				continue
			}
			rp.SetDecoders(nd)
			var out fuzzSink
			n, err := rp.Run(context.Background(), &out)
			if err == nil && n != out.n {
				t.Fatalf("decoders=%d: reported %d refs, delivered %d", nd, n, out.n)
			}
			// The shared-decode path must agree with the classic replayer
			// byte for byte: same acceptance (v2 only), same ref count.
			sr, serr := NewSharedReplayer(bytes.NewReader(data))
			if serr != nil {
				if rp.Version() == 2 {
					t.Fatalf("shared replayer rejected a v2 header: %v", serr)
				}
				continue
			}
			sr.SetDecoders(nd)
			var sout fuzzSink
			sn, serr := sr.Run(context.Background(), &sout)
			if serr == nil && sn != sout.n {
				t.Fatalf("decoders=%d: shared reported %d refs, delivered %d", nd, sn, sout.n)
			}
			if err == nil && serr == nil && n != sn {
				t.Fatalf("decoders=%d: classic replay %d refs, shared %d", nd, n, sn)
			}
			if (err == nil) != (serr == nil) {
				t.Fatalf("decoders=%d: classic err=%v, shared err=%v", nd, err, serr)
			}
		}
	})
}

type fuzzSink struct{ n uint64 }

func (s *fuzzSink) Ref(addr uint64, write, collector bool) { s.n++ }
func (s *fuzzSink) RefBatch(refs []mem.Ref)                { s.n += uint64(len(refs)) }
func (s *fuzzSink) ChunkBatch(refs []mem.Ref, insnsAt uint64) {
	s.n += uint64(len(refs))
}
