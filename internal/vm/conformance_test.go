package vm

import (
	_ "embed"
	"testing"

	"gcsim/internal/gc"
	"gcsim/internal/scheme"
)

//go:embed conformance.scm
var conformanceSource string

// TestConformanceSuite runs the Scheme-level suite on a bare machine and
// under every collector; any failure is reported with the suite's own
// diagnostic output. Because the suite mixes deep recursion, churn, and
// mutation, running it under the collectors doubles as a GC torture test.
func TestConformanceSuite(t *testing.T) {
	makers := map[string]func() gc.Collector{
		"none":         func() gc.Collector { return gc.NewNoGC() },
		"cheney":       func() gc.Collector { return gc.NewCheney(128 << 10) },
		"generational": func() gc.Collector { return gc.NewGenerational(32<<10, 512<<10) },
		"aggressive":   func() gc.Collector { return gc.NewAggressive(16<<10, 512<<10) },
		"marksweep":    func() gc.Collector { return gc.NewMarkSweep(96 << 10) },
	}
	for name, mk := range makers {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			col := mk()
			m := NewLoaded(nil, col)
			m.MaxInsns = 2_000_000_000
			v, err := m.Eval(conformanceSource)
			if err != nil {
				t.Fatalf("suite aborted: %v\noutput:\n%s", err, m.Output())
			}
			if !scheme.IsFixnum(v) {
				t.Fatalf("suite value not a fixnum: %s", m.DescribeValue(v))
			}
			if failures := scheme.FixnumValue(v); failures != 0 {
				t.Errorf("%d conformance failures under %s:\n%s",
					failures, name, m.Output())
			}
			if name != "none" && col.Stats().Collections == 0 {
				t.Errorf("suite did not trigger any collections under %s", name)
			}
		})
	}
}
