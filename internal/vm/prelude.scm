;;; Prelude: the portion of the runtime library written in Scheme itself.
;;; Loaded into every machine before the program; its procedures execute in
;;; simulated memory exactly like program code.

(define (map1 f lst)
  (if (null? lst)
      '()
      (cons (f (car lst)) (map1 f (cdr lst)))))

(define (map f lst . more)
  (if (null? more)
      (map1 f lst)
      (let loop ((ls (cons lst more)))
        (if (null? (car ls))
            '()
            (cons (apply f (map1 car ls))
                  (loop (map1 cdr ls)))))))

(define (for-each f lst . more)
  (if (null? more)
      (let loop ((l lst))
        (if (null? l)
            (void)
            (begin (f (car l)) (loop (cdr l)))))
      (let loop ((ls (cons lst more)))
        (if (null? (car ls))
            (void)
            (begin (apply f (map1 car ls))
                   (loop (map1 cdr ls)))))))

(define (filter pred lst)
  (cond ((null? lst) '())
        ((pred (car lst)) (cons (car lst) (filter pred (cdr lst))))
        (else (filter pred (cdr lst)))))

(define (fold-left f acc lst)
  (if (null? lst)
      acc
      (fold-left f (f acc (car lst)) (cdr lst))))

(define (fold-right f acc lst)
  (if (null? lst)
      acc
      (f (car lst) (fold-right f acc (cdr lst)))))

(define (reduce f init lst)
  (if (null? lst) init (fold-left f (car lst) (cdr lst))))

(define (last-pair lst)
  (if (null? (cdr lst)) lst (last-pair (cdr lst))))

(define (list-copy lst)
  (if (null? lst) '() (cons (car lst) (list-copy (cdr lst)))))

(define (iota n)
  (let loop ((i (- n 1)) (acc '()))
    (if (< i 0) acc (loop (- i 1) (cons i acc)))))

(define (append! a b)
  (if (null? a)
      b
      (begin (set-cdr! (last-pair a) b) a)))

(define (reverse! lst)
  (let loop ((l lst) (acc '()))
    (if (null? l)
        acc
        (let ((next (cdr l)))
          (set-cdr! l acc)
          (loop next l)))))

(define (assq-ref alist key default)
  (let ((hit (assq key alist)))
    (if hit (cdr hit) default)))

(define (remove pred lst)
  (filter (lambda (x) (not (pred x))) lst))

(define (any pred lst)
  (cond ((null? lst) #f)
        ((pred (car lst)) #t)
        (else (any pred (cdr lst)))))

(define (every pred lst)
  (cond ((null? lst) #t)
        ((pred (car lst)) (every pred (cdr lst)))
        (else #f)))

(define (count-if pred lst)
  (fold-left (lambda (acc x) (if (pred x) (+ acc 1) acc)) 0 lst))

;; Stable merge sort on lists; less? is a two-argument predicate.
(define (sort lst less?)
  (define (merge a b)
    (cond ((null? a) b)
          ((null? b) a)
          ((less? (car b) (car a))
           (cons (car b) (merge a (cdr b))))
          (else
           (cons (car a) (merge (cdr a) b)))))
  (define (split l)
    (if (or (null? l) (null? (cdr l)))
        (cons l '())
        (let ((rest (split (cddr l))))
          (cons (cons (car l) (car rest))
                (cons (cadr l) (cdr rest))))))
  (if (or (null? lst) (null? (cdr lst)))
      lst
      (let ((halves (split lst)))
        (merge (sort (car halves) less?)
               (sort (cdr halves) less?)))))

(define (vector-map f v)
  (let* ((n (vector-length v))
         (out (make-vector n 0)))
    (let loop ((i 0))
      (if (< i n)
          (begin
            (vector-set! out i (f (vector-ref v i)))
            (loop (+ i 1)))
          out))))

(define (vector-for-each f v)
  (let ((n (vector-length v)))
    (let loop ((i 0))
      (if (< i n)
          (begin (f (vector-ref v i)) (loop (+ i 1)))
          (void)))))

(define (string-join parts sep)
  (cond ((null? parts) "")
        ((null? (cdr parts)) (car parts))
        (else (string-append (car parts) sep (string-join (cdr parts) sep)))))

(define (1+ n) (+ n 1))
(define (-1+ n) (- n 1))

(define (caaar x) (car (caar x)))
(define (caadr x) (car (cadr x)))
(define (cadar x) (car (cdar x)))
(define (cdadr x) (cdr (cadr x)))
(define (cddar x) (cdr (cdar x)))
(define (cdaar x) (cdr (caar x)))
