package vm

import (
	"strings"
	"testing"

	"gcsim/internal/scheme"
)

// These tests pin the two contracts of the packed-word rewrite: safepoint
// fuel/interrupt checks still stop runs promptly and exactly, and
// superinstruction fusion changes neither results nor instruction totals.

// runCounting evaluates src on a fresh machine (fused or not) and returns
// the result, the error, and the simulated instruction total.
func runCounting(t *testing.T, src string, noFuse bool) (scheme.Word, error, uint64) {
	t.Helper()
	m := NewLoaded(nil, nil)
	m.MaxInsns = 500_000_000
	m.NoFuse = noFuse
	w, err := m.Eval(src)
	return w, err, m.Insns()
}

// TestFuelStopsWithinOneBasicBlock drives a tail-recursive spin loop —
// whose only safepoints are the tail-call back-edges — into a small
// budget and checks the overshoot: the run must stop with
// ErrFuelExhausted having executed at most one loop body past MaxInsns.
func TestFuelStopsWithinOneBasicBlock(t *testing.T) {
	const src = "(define (spin i) (if (eq? i 0) 0 (spin (+ i -1)))) (spin 100000000)"

	// Measure one loop iteration's cost from two budgets far enough apart
	// to amortize setup, then verify overshoot at several budgets.
	m := NewLoaded(nil, nil)
	m.MaxInsns = 500_000_000
	m.MustEval("(define (spin i) (if (eq? i 0) 0 (spin (+ i -1))))")
	i0 := m.Insns()
	m.MustEval("(spin 1000)")
	i1 := m.Insns()
	m.MustEval("(spin 2000)")
	perIter := (m.Insns() - i1 - (i1 - i0)) / 1000
	if perIter == 0 || perIter > 100 {
		t.Fatalf("implausible per-iteration cost %d", perIter)
	}

	for _, budget := range []uint64{10_000, 10_001, 54_321} {
		m := NewLoaded(nil, nil)
		m.MaxInsns = budget
		_, err := m.Eval(src)
		if err != ErrFuelExhausted {
			t.Fatalf("budget %d: err = %v, want ErrFuelExhausted", budget, err)
		}
		over := m.Insns() - budget
		if m.Insns() <= budget {
			t.Fatalf("budget %d: stopped at %d, inside the budget (safepoint fired early)", budget, m.Insns())
		}
		// One basic block here is one loop body; allow one extra body for
		// the block in flight when the budget tripped.
		if over > 2*perIter {
			t.Errorf("budget %d: overshot by %d insns, more than two %d-insn loop bodies", budget, over, perIter)
		}
	}
}

// TestInterruptStopsPromptly interrupts a spinning machine before it
// starts and checks the very first safepoint surfaces ErrInterrupted.
func TestInterruptStopsPromptly(t *testing.T) {
	m := NewLoaded(nil, nil)
	m.MaxInsns = 500_000_000
	m.MustEval("(define (spin i) (if (eq? i 0) 0 (spin (+ i -1))))")
	m.Interrupt()
	start := m.Insns()
	_, err := m.Eval("(spin 100000000)")
	if err != ErrInterrupted {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	// The toplevel call is the first safepoint: the run must die within
	// one basic block of it, not after some slice of the hundred-million
	// iteration loop.
	if ran := m.Insns() - start; ran > 1000 {
		t.Errorf("ran %d insns after a pre-set interrupt, want < 1000", ran)
	}
	m.ClearInterrupt()
	if _, err := m.Eval("(spin 10)"); err != nil {
		t.Errorf("after ClearInterrupt: %v", err)
	}
}

// TestFusionNeutrality runs result- and counter-sensitive programs fused
// and unfused: results and instruction totals must match exactly — fusion
// only collapses dispatch, never accounting.
func TestFusionNeutrality(t *testing.T) {
	programs := []string{
		// Every fusable pair: local/const/global/free loads feeding
		// pushes, pushes feeding calls, and each fused compare+branch.
		"(define (f a b) (+ a b)) (f 1 2)",
		"(define g 10) (define (h x) (* g x)) (h 5)",
		"(define (mk n) (lambda (x) (+ n x))) ((mk 4) 5)",
		"(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 12)",
		"(define (count p lst n) (if (null? lst) n (count p (cdr lst) (if (p (car lst)) (+ n 1) n)))) (count pair? (list 1 (list 2) 3 (list 4)) 0)",
		"(define (spin i acc) (if (eq? i 0) acc (spin (- i 1) (+ acc 1)))) (spin 5000 0)",
		"(define (cmp a b) (if (>= a b) (if (> a b) 2 1) (if (<= a b) (if (= a b) 99 0) -1))) (+ (cmp 3 2) (cmp 2 2) (cmp 1 2))",
		"(define (z n) (if (zero? n) 'done (z (- n 1)))) (z 100)",
		"(define (nn x) (if (not x) 1 0)) (+ (nn #f) (nn 3))",
		"(let loop ((i 0) (acc '())) (if (= i 20) (length acc) (loop (+ i 1) (cons i acc))))",
	}
	for _, src := range programs {
		fw, ferr, fi := runCounting(t, src, false)
		uw, uerr, ui := runCounting(t, src, true)
		if (ferr == nil) != (uerr == nil) {
			t.Fatalf("%q: fused err %v vs unfused err %v", src, ferr, uerr)
		}
		if fw != uw {
			t.Errorf("%q: fused result %v != unfused %v", src, fw, uw)
		}
		if fi != ui {
			t.Errorf("%q: fused insns %d != unfused %d", src, fi, ui)
		}
	}
}

// FuzzFuse is the differential fuzzer for superinstruction fusion: any
// program the reader accepts must evaluate to the same result, the same
// printed output, the same error, and the same instruction total with
// fusion on and off. The seeds cover every fused pair and the edge shapes
// the fusion pass reasons about (branch targets between fusable
// neighbors, closures capturing frames, deep recursion into the fuel
// budget). (Without -fuzz, go test runs the seed corpus.)
func FuzzFuse(f *testing.F) {
	seeds := []string{
		"(define (f a b) (+ a b)) (f 1 2)",
		"(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 10)",
		"(define (mk n) (lambda (x) (+ n x))) ((mk 4) 5)",
		"(let loop ((i 0) (acc '())) (if (= i 20) (length acc) (loop (+ i 1) (cons i acc))))",
		"(define (z n) (if (zero? n) 'done (z (- n 1)))) (z 50)",
		"(display (list 1 2 3)) (newline)",
		"(define v (make-vector 4 0)) (vector-set! v 2 9) (vector-ref v 2)",
		"(define (spin i) (if (eq? i 0) 0 (spin (- i 1)))) (spin 1000000)", // trips MaxInsns
		"(apply + 1 2 (list 3 4))",
		"(define-syntax inc (syntax-rules () ((_ x) (+ x 1)))) (inc (inc 40))",
		"(car '())", // runtime error, must match fused/unfused
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if _, err := scheme.ReadAll(src); err != nil {
			return
		}
		type outcome struct {
			val, out, errs string
			insns          uint64
		}
		run := func(noFuse bool) outcome {
			m := NewLoaded(nil, nil)
			m.MaxInsns = 200_000 // bounds runaway fuzz programs, identically on both sides
			m.NoFuse = noFuse
			w, err := m.Eval(src)
			o := outcome{out: m.Output(), insns: m.Insns()}
			if err != nil {
				o.errs = err.Error()
			} else {
				o.val = m.DescribeValue(w)
			}
			return o
		}
		fused, unfused := run(false), run(true)
		if fused != unfused {
			t.Fatalf("fused and unfused runs diverge for %q:\nfused:   %+v\nunfused: %+v", src, fused, unfused)
		}
	})
}

// TestFusionFiresOnHotPairs proves the fusion pass actually rewrites the
// pairs it claims to (a neutrality test alone would pass if fusion were
// accidentally disabled).
func TestFusionFiresOnHotPairs(t *testing.T) {
	m := NewLoaded(nil, nil)
	m.MaxInsns = 500_000_000
	m.MustEval("(define (f a b) (if (< a b) (f (+ a 1) b) a))")
	m.MustEval("(f 0 3)") // force finalize+fuse of f's code
	var dis string
	for _, c := range m.codes {
		if c.Name == "f" {
			dis = c.DisassemblePacked()
		}
	}
	if dis == "" {
		t.Fatal("procedure f not found in the machine's code table")
	}
	for _, want := range []string{"lt+jf", "local+push", "(fused into"} {
		if !strings.Contains(dis, want) {
			t.Errorf("fused disassembly of f lacks %q:\n%s", want, dis)
		}
	}

	// And the jump-target guard: a branch target between two otherwise
	// fusable instructions must block fusion at that slot.
	m2 := NewLoaded(nil, nil)
	m2.MaxInsns = 500_000_000
	m2.NoFuse = true
	m2.MustEval("(define (f a b) (if (< a b) (f (+ a 1) b) a))")
	m2.MustEval("(f 0 3)")
	for _, c := range m2.codes {
		if c.Name == "f" && strings.Contains(c.DisassemblePacked(), "(fused into") {
			t.Error("NoFuse machine still produced fused slots")
		}
	}
}
