package vm

import (
	"strings"
	"testing"

	"gcsim/internal/gc"
	"gcsim/internal/scheme"
)

// evalFix evaluates src and expects a fixnum result.
func evalFix(t *testing.T, m *Machine, src string, want int64) {
	t.Helper()
	w, err := m.Eval(src)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	if !scheme.IsFixnum(w) {
		t.Fatalf("Eval(%q) = %s, want fixnum %d", src, m.DescribeValue(w), want)
	}
	if got := scheme.FixnumValue(w); got != want {
		t.Fatalf("Eval(%q) = %d, want %d", src, got, want)
	}
}

// evalStr evaluates src and compares the written form of the result.
func evalStr(t *testing.T, m *Machine, src, want string) {
	t.Helper()
	w, err := m.Eval(src)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	if got := m.DescribeValue(w); got != want {
		t.Fatalf("Eval(%q) = %s, want %s", src, got, want)
	}
}

func bare(t *testing.T) *Machine {
	t.Helper()
	m := New(nil, nil)
	m.MaxInsns = 500_000_000
	return m
}

func loaded(t *testing.T) *Machine {
	t.Helper()
	m := NewLoaded(nil, nil)
	m.MaxInsns = 500_000_000
	return m
}

func TestSelfEvaluating(t *testing.T) {
	m := bare(t)
	evalFix(t, m, "42", 42)
	evalStr(t, m, "#t", "#t")
	evalStr(t, m, "#f", "#f")
	evalStr(t, m, `#\a`, `#\a`)
	evalStr(t, m, `"hello"`, `"hello"`)
	evalStr(t, m, "3.5", "3.5")
	evalStr(t, m, "'()", "()")
	evalStr(t, m, "'(1 2 3)", "(1 2 3)")
	evalStr(t, m, "'(a . b)", "(a . b)")
	evalStr(t, m, "'#(1 x)", "#(1 x)")
}

func TestArithmetic(t *testing.T) {
	m := bare(t)
	evalFix(t, m, "(+ 1 2)", 3)
	evalFix(t, m, "(+ 1 2 3 4)", 10)
	evalFix(t, m, "(+)", 0)
	evalFix(t, m, "(- 10 3)", 7)
	evalFix(t, m, "(- 5)", -5)
	evalFix(t, m, "(- 20 5 3)", 12)
	evalFix(t, m, "(* 6 7)", 42)
	evalFix(t, m, "(*)", 1)
	evalFix(t, m, "(quotient 17 5)", 3)
	evalFix(t, m, "(remainder 17 5)", 2)
	evalFix(t, m, "(modulo -7 3)", 2)
	evalFix(t, m, "(modulo 7 -3)", -2)
	evalFix(t, m, "(abs -9)", 9)
	evalFix(t, m, "(min 3 1 2)", 1)
	evalFix(t, m, "(max 3 9 2)", 9)
	evalFix(t, m, "(expt 2 10)", 1024)
	evalStr(t, m, "(/ 1 2)", "0.5")
	evalFix(t, m, "(/ 6 3)", 2)
	evalStr(t, m, "(sqrt 4.0)", "2.")
	evalStr(t, m, "(exact->inexact 3)", "3.")
	evalFix(t, m, "(inexact->exact 3.0)", 3)
	evalFix(t, m, "(bitwise-and 12 10)", 8)
	evalFix(t, m, "(bitwise-or 12 10)", 14)
	evalFix(t, m, "(bitwise-xor 12 10)", 6)
	evalFix(t, m, "(arithmetic-shift 1 4)", 16)
	evalFix(t, m, "(arithmetic-shift 16 -4)", 1)
}

func TestComparisons(t *testing.T) {
	m := bare(t)
	cases := map[string]string{
		"(= 1 1)": "#t", "(= 1 2)": "#f", "(= 1 1 1)": "#t", "(= 1 1 2)": "#f",
		"(< 1 2 3)": "#t", "(< 1 3 2)": "#f", "(<= 1 1 2)": "#t",
		"(> 3 2 1)": "#t", "(>= 3 3 1)": "#t",
		"(< 1.5 2)": "#t", "(= 2 2.0)": "#t",
		"(zero? 0)": "#t", "(zero? 1)": "#f", "(zero? 0.0)": "#t",
		"(positive? 3)": "#t", "(negative? -3)": "#t",
		"(even? 4)": "#t", "(odd? 3)": "#t",
	}
	for src, want := range cases {
		evalStr(t, m, src, want)
	}
}

func TestIfAndBooleans(t *testing.T) {
	m := bare(t)
	evalFix(t, m, "(if #t 1 2)", 1)
	evalFix(t, m, "(if #f 1 2)", 2)
	evalFix(t, m, "(if 0 1 2)", 1) // only #f is false
	evalFix(t, m, "(if '() 1 2)", 1)
	evalStr(t, m, "(if #f 1)", "#!unspecific")
	evalStr(t, m, "(not #f)", "#t")
	evalStr(t, m, "(not 3)", "#f")
}

func TestDefineAndLambda(t *testing.T) {
	m := bare(t)
	evalFix(t, m, "(define x 10) x", 10)
	evalFix(t, m, "(define (add2 n) (+ n 2)) (add2 40)", 42)
	evalFix(t, m, "((lambda (a b) (* a b)) 6 7)", 42)
	evalFix(t, m, "(define (const) 5) (const)", 5)
	// Rest arguments.
	evalStr(t, m, "(define (rest . xs) xs) (rest 1 2 3)", "(1 2 3)")
	evalStr(t, m, "(define (rest2 a . xs) xs) (rest2 1 2 3)", "(2 3)")
	evalFix(t, m, "(define (rest3 a . xs) a) (rest3 7)", 7)
	// Redefinition takes effect.
	evalFix(t, m, "(define y 1) (define y 2) y", 2)
}

func TestClosures(t *testing.T) {
	m := bare(t)
	evalFix(t, m, `
		(define (make-adder n) (lambda (x) (+ x n)))
		((make-adder 5) 37)`, 42)
	evalFix(t, m, `
		(define (compose f g) (lambda (x) (f (g x))))
		(define (double x) (* 2 x))
		(define (inc x) (+ x 1))
		((compose double inc) 20)`, 42)
	// Nested capture across two lambda boundaries.
	evalFix(t, m, `
		(define (outer a)
		  (lambda (b)
		    (lambda (c) (+ a (+ b c)))))
		(((outer 1) 2) 3)`, 6)
	// Shared mutable state through a boxed variable.
	evalFix(t, m, `
		(define (make-counter)
		  (let ((n 0))
		    (lambda () (set! n (+ n 1)) n)))
		(define c (make-counter))
		(c) (c) (c)`, 3)
	// Two closures over the same box see each other's updates.
	evalFix(t, m, `
		(define pair
		  (let ((n 100))
		    (cons (lambda () (set! n (+ n 1)) n)
		          (lambda () n))))
		((car pair))
		((cdr pair))`, 101)
}

func TestLetForms(t *testing.T) {
	m := bare(t)
	evalFix(t, m, "(let ((a 1) (b 2)) (+ a b))", 3)
	evalFix(t, m, "(let ((a 1)) (let ((b 2)) (+ a b)))", 3)
	evalFix(t, m, "(let* ((a 1) (b (+ a 1))) (* a b))", 2)
	evalFix(t, m, "(letrec ((even? (lambda (n) (if (= n 0) #t (odd? (- n 1))))) (odd? (lambda (n) (if (= n 0) #f (even? (- n 1)))))) (if (even? 10) 1 0))", 1)
	evalFix(t, m, "(let loop ((i 0) (acc 0)) (if (= i 5) acc (loop (+ i 1) (+ acc i))))", 10)
	// let shadowing
	evalFix(t, m, "(let ((x 1)) (let ((x 2)) x))", 2)
	evalFix(t, m, "(let ((x 1)) (let ((x (+ x 1))) x))", 2)
	// let body with internal defines
	evalFix(t, m, `
		(define (f)
		  (define a 1)
		  (define (g) (+ a 10))
		  (g))
		(f)`, 11)
}

func TestCondCaseAndOr(t *testing.T) {
	m := bare(t)
	evalFix(t, m, "(cond (#f 1) (#t 2) (else 3))", 2)
	evalFix(t, m, "(cond (#f 1) (else 3))", 3)
	evalFix(t, m, "(cond (42))", 42)
	evalFix(t, m, "(cond ((assq 'b '((a 1) (b 2))) => cadr) (else 0))", 2)
	evalFix(t, m, "(case 3 ((1 2) 10) ((3 4) 20) (else 30))", 20)
	evalFix(t, m, "(case 9 ((1 2) 10) ((3 4) 20) (else 30))", 30)
	evalFix(t, m, "(case 'b ((a) 1) ((b) 2))", 2)
	evalStr(t, m, "(and)", "#t")
	evalFix(t, m, "(and 1 2 3)", 3)
	evalStr(t, m, "(and 1 #f 3)", "#f")
	evalStr(t, m, "(or)", "#f")
	evalFix(t, m, "(or #f 2)", 2)
	evalFix(t, m, "(or 1 (error \"not reached\"))", 1)
	evalFix(t, m, "(when #t 1 2)", 2)
	evalStr(t, m, "(when #f 1)", "#!unspecific")
	evalFix(t, m, "(unless #f 7)", 7)
	evalFix(t, m, "(begin 1 2 3)", 3)
}

func TestDoLoop(t *testing.T) {
	m := bare(t)
	evalFix(t, m, "(do ((i 0 (+ i 1)) (acc 0 (+ acc i))) ((= i 5) acc))", 10)
	evalFix(t, m, "(do ((i 0 (+ i 1))) ((= i 3) i))", 3)
}

func TestRecursion(t *testing.T) {
	m := bare(t)
	evalFix(t, m, `
		(define (fact n) (if (< n 2) 1 (* n (fact (- n 1)))))
		(fact 10)`, 3628800)
	evalFix(t, m, `
		(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
		(fib 15)`, 610)
	// Deep tail recursion must run in constant stack.
	evalFix(t, m, `
		(define (count n acc) (if (= n 0) acc (count (- n 1) (+ acc 1))))
		(count 100000 0)`, 100000)
}

func TestSetBang(t *testing.T) {
	m := bare(t)
	evalFix(t, m, "(define g 1) (set! g 5) g", 5)
	evalFix(t, m, "(let ((x 1)) (set! x 9) x)", 9)
	evalFix(t, m, `
		(define (f a) (set! a (+ a 1)) a)
		(f 41)`, 42)
}

func TestListPrimitives(t *testing.T) {
	m := bare(t)
	evalStr(t, m, "(cons 1 2)", "(1 . 2)")
	evalFix(t, m, "(car '(1 2))", 1)
	evalStr(t, m, "(cdr '(1 2))", "(2)")
	evalFix(t, m, "(cadr '(1 2 3))", 2)
	evalFix(t, m, "(caddr '(1 2 3))", 3)
	evalFix(t, m, "(length '(a b c))", 3)
	evalFix(t, m, "(length '())", 0)
	evalStr(t, m, "(append '(1 2) '(3) '() '(4))", "(1 2 3 4)")
	evalStr(t, m, "(append)", "()")
	evalStr(t, m, "(reverse '(1 2 3))", "(3 2 1)")
	evalFix(t, m, "(list-ref '(10 20 30) 1)", 20)
	evalStr(t, m, "(list-tail '(1 2 3 4) 2)", "(3 4)")
	evalStr(t, m, "(memq 'c '(a b c d))", "(c d)")
	evalStr(t, m, "(memq 'z '(a b))", "#f")
	evalStr(t, m, "(member '(1) '((0) (1) (2)))", "((1) (2))")
	evalStr(t, m, "(assq 'b '((a . 1) (b . 2)))", "(b . 2)")
	evalStr(t, m, "(assoc \"b\" '((\"a\" . 1) (\"b\" . 2)))", `("b" . 2)`)
	evalStr(t, m, "(list? '(1 2))", "#t")
	evalStr(t, m, "(list? '(1 . 2))", "#f")
	evalFix(t, m, "(define p (cons 1 2)) (set-car! p 10) (car p)", 10)
	evalFix(t, m, "(set-cdr! p 20) (cdr p)", 20)
}

func TestVectors(t *testing.T) {
	m := bare(t)
	evalFix(t, m, "(vector-length (make-vector 5 0))", 5)
	evalFix(t, m, "(vector-ref (vector 1 2 3) 1)", 2)
	evalFix(t, m, `
		(define v (make-vector 3 0))
		(vector-set! v 1 42)
		(vector-ref v 1)`, 42)
	evalStr(t, m, "(vector->list (vector 1 2))", "(1 2)")
	evalStr(t, m, "(list->vector '(1 2 3))", "#(1 2 3)")
	evalStr(t, m, "(define w (make-vector 2 0)) (vector-fill! w 7) (vector->list w)", "(7 7)")
}

func TestStrings(t *testing.T) {
	m := bare(t)
	evalFix(t, m, `(string-length "hello")`, 5)
	evalStr(t, m, `(string-ref "abc" 1)`, `#\b`)
	evalStr(t, m, `(string-append "foo" "bar")`, `"foobar"`)
	evalStr(t, m, `(substring "hello" 1 3)`, `"el"`)
	evalStr(t, m, `(string=? "ab" "ab")`, "#t")
	evalStr(t, m, `(string=? "ab" "ac")`, "#f")
	evalStr(t, m, `(string<? "ab" "ac")`, "#t")
	evalStr(t, m, `(string->symbol "foo")`, "foo")
	evalStr(t, m, `(symbol->string 'foo)`, `"foo"`)
	evalStr(t, m, `(string->list "ab")`, `(#\a #\b)`)
	evalStr(t, m, `(list->string '(#\a #\b))`, `"ab"`)
	evalStr(t, m, `(number->string 42)`, `"42"`)
	evalFix(t, m, `(string->number "42")`, 42)
	evalStr(t, m, `(string->number "nope")`, "#f")
	// Long strings span multiple payload words.
	evalFix(t, m, `(string-length (string-append "0123456789" "0123456789"))`, 20)
	evalStr(t, m, `(string-ref (string-append "0123456789" "abcdefghij") 15)`, `#\f`)
}

func TestCharacters(t *testing.T) {
	m := bare(t)
	evalFix(t, m, `(char->integer #\a)`, 97)
	evalStr(t, m, "(integer->char 98)", `#\b`)
	evalStr(t, m, `(char=? #\a #\a)`, "#t")
	evalStr(t, m, `(char<? #\a #\b)`, "#t")
	evalStr(t, m, `(char-alphabetic? #\a)`, "#t")
	evalStr(t, m, `(char-numeric? #\7)`, "#t")
	evalStr(t, m, `(char-whitespace? #\space)`, "#t")
	evalStr(t, m, `(char-upcase #\a)`, `#\A`)
	evalStr(t, m, `(char-downcase #\A)`, `#\a`)
}

func TestEquality(t *testing.T) {
	m := bare(t)
	evalStr(t, m, "(eq? 'a 'a)", "#t")
	evalStr(t, m, "(eq? '() '())", "#t")
	evalStr(t, m, "(eq? (cons 1 2) (cons 1 2))", "#f")
	evalStr(t, m, "(eqv? 1.5 1.5)", "#t")
	evalStr(t, m, "(equal? '(1 (2 3)) '(1 (2 3)))", "#t")
	evalStr(t, m, "(equal? '(1 2) '(1 3))", "#f")
	evalStr(t, m, `(equal? "abc" "abc")`, "#t")
	evalStr(t, m, "(equal? (vector 1 2) (vector 1 2))", "#t")
	evalStr(t, m, "(equal? (vector 1 2) (vector 1 3))", "#f")
}

func TestQuasiquote(t *testing.T) {
	m := loaded(t)
	evalStr(t, m, "`(1 2 3)", "(1 2 3)")
	evalStr(t, m, "(define x 5) `(a ,x)", "(a 5)")
	evalStr(t, m, "`(a ,@(list 1 2) b)", "(a 1 2 b)")
	evalStr(t, m, "`(1 `(2 ,(3 ,x)))", "(1 (quasiquote (2 (unquote (3 5)))))")
	evalStr(t, m, "`#(a ,x)", "#(a 5)")
}

func TestApply(t *testing.T) {
	m := loaded(t)
	evalFix(t, m, "(apply + '(1 2 3))", 6)
	evalFix(t, m, "(apply + 1 2 '(3 4))", 10)
	evalFix(t, m, "(apply max '(3 9 2))", 9)
	evalStr(t, m, "(apply cons '(1 2))", "(1 . 2)")
	// apply with a closure
	evalFix(t, m, "(define (add3 a b c) (+ a (+ b c))) (apply add3 '(1 2 3))", 6)
	// apply in non-tail position
	evalFix(t, m, "(+ 1 (apply * '(2 3)))", 7)
}

func TestPreludeLibrary(t *testing.T) {
	m := loaded(t)
	evalStr(t, m, "(map (lambda (x) (* x x)) '(1 2 3))", "(1 4 9)")
	evalStr(t, m, "(map + '(1 2) '(10 20))", "(11 22)")
	evalFix(t, m, `
		(define sum 0)
		(for-each (lambda (x) (set! sum (+ sum x))) '(1 2 3 4))
		sum`, 10)
	evalStr(t, m, "(filter odd? '(1 2 3 4 5))", "(1 3 5)")
	evalFix(t, m, "(fold-left + 0 '(1 2 3))", 6)
	evalFix(t, m, "(fold-right - 0 '(1 2 3))", 2)
	evalStr(t, m, "(iota 4)", "(0 1 2 3)")
	evalStr(t, m, "(sort '(3 1 2) <)", "(1 2 3)")
	evalStr(t, m, "(sort '() <)", "()")
	evalStr(t, m, "(sort '(5 4 3 2 1) <)", "(1 2 3 4 5)")
	evalStr(t, m, "(reverse! (list 1 2 3))", "(3 2 1)")
	evalStr(t, m, "(append! (list 1 2) (list 3))", "(1 2 3)")
	evalStr(t, m, "(any even? '(1 3 4))", "#t")
	evalStr(t, m, "(every even? '(2 4))", "#t")
	evalStr(t, m, "(every even? '(2 3))", "#f")
	evalFix(t, m, "(count-if odd? '(1 2 3))", 2)
	evalStr(t, m, "(vector-map 1+ (vector 1 2))", "#(2 3)")
	evalStr(t, m, `(string-join '("a" "b" "c") ",")`, `"a,b,c"`)
	evalFix(t, m, "(1+ 41)", 42)
	evalStr(t, m, "(last-pair '(1 2 3))", "(3)")
	evalStr(t, m, "(remove odd? '(1 2 3 4))", "(2 4)")
}

func TestTables(t *testing.T) {
	m := loaded(t)
	evalFix(t, m, `
		(define tbl (make-table))
		(table-set! tbl 'a 1)
		(table-set! tbl 'b 2)
		(table-ref tbl 'a 0)`, 1)
	evalFix(t, m, "(table-ref tbl 'missing 99)", 99)
	evalFix(t, m, "(table-count tbl)", 2)
	evalFix(t, m, "(table-set! tbl 'a 10) (table-ref tbl 'a 0)", 10)
	evalFix(t, m, "(table-count tbl)", 2)
	// Growth beyond the initial capacity.
	evalFix(t, m, `
		(define big (make-table))
		(for-each (lambda (i) (table-set! big i (* i i))) (iota 100))
		(table-ref big 77 0)`, 5929)
	evalFix(t, m, "(table-count big)", 100)
	evalFix(t, m, "(length (table->list big))", 100)
}

func TestDisplayOutput(t *testing.T) {
	m := bare(t)
	m.MustEval(`(display "x = ") (display 42) (newline) (write "s")`)
	if got, want := m.Output(), "x = 42\n\"s\""; got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
	m.ResetOutput()
	if m.Output() != "" {
		t.Error("ResetOutput failed")
	}
	m.MustEval(`(display '(1 #\a "s"))`)
	if got, want := m.Output(), `(1 a s)`; got != want {
		t.Errorf("display list = %q, want %q", got, want)
	}
}

func TestErrors(t *testing.T) {
	m := loaded(t)
	cases := []string{
		"(car 1)",
		"(cdr '())",
		"(vector-ref (vector 1) 5)",
		"(vector-ref (vector 1) -1)",
		"(undefined-variable)",
		"(+ 'a 1)",
		"((lambda (x) x))",     // too few args
		"((lambda (x) x) 1 2)", // too many args
		"(quotient 1 0)",
		"(modulo 1 0)",
		"(error \"boom\" 1 2)",
		"(apply + 1)", // apply needs a list
		`(substring "abc" 2 9)`,
		"(1 2 3)", // calling a non-procedure
		"(string-ref \"ab\" 9)",
	}
	for _, src := range cases {
		if _, err := m.Eval(src); err == nil {
			t.Errorf("Eval(%q) succeeded, want error", src)
		}
	}
	// Error messages mention what went wrong.
	_, err := m.Eval(`(error "custom failure" 42)`)
	if err == nil || !strings.Contains(err.Error(), "custom failure") {
		t.Errorf("error message lost: %v", err)
	}
	_, err = m.Eval("(nonexistent-global 1)")
	if err == nil || !strings.Contains(err.Error(), "unbound variable") {
		t.Errorf("unbound error wrong: %v", err)
	}
	// The machine remains usable after an error.
	evalFix(t, m, "(+ 1 1)", 2)
}

func TestCompileErrors(t *testing.T) {
	m := bare(t)
	cases := []string{
		"(if)",
		"(lambda (x))",
		"(let ((x)) x)",
		"(set! 3 4)",
		"()",
		"(define)",
		"(let ((x 1) y) x)",
		"(do ((i)) (#t))",
		"(unquote x)",
	}
	for _, src := range cases {
		if _, err := m.Eval(src); err == nil {
			t.Errorf("Eval(%q) compiled, want error", src)
		}
	}
}

func TestGensymAndRandom(t *testing.T) {
	m := bare(t)
	evalStr(t, m, "(eq? (gensym) (gensym))", "#f")
	evalStr(t, m, "(symbol? (gensym))", "#t")
	evalStr(t, m, "(< (random 10) 10)", "#t")
	evalStr(t, m, "(>= (random 10) 0)", "#t")
	// Seeded sequences are reproducible.
	v1, _ := m.Eval("(random-seed! 42) (list (random 100) (random 100) (random 100))")
	s1 := m.DescribeValue(v1)
	v2, _ := m.Eval("(random-seed! 42) (list (random 100) (random 100) (random 100))")
	if s2 := m.DescribeValue(v2); s1 != s2 {
		t.Errorf("random not reproducible: %s vs %s", s1, s2)
	}
}

func TestHigherOrderBuiltins(t *testing.T) {
	m := loaded(t)
	// Builtins are first-class closures.
	evalStr(t, m, "(map car '((1 2) (3 4)))", "(1 3)")
	evalFix(t, m, "((if #t + *) 2 3)", 5)
	evalStr(t, m, "(procedure? car)", "#t")
	evalStr(t, m, "(procedure? (lambda (x) x))", "#t")
	evalStr(t, m, "(procedure? 3)", "#f")
}

func TestShadowingBuiltins(t *testing.T) {
	m := bare(t)
	// A local binding shadows the builtin and disables inlining.
	evalFix(t, m, "(let ((car (lambda (x) 99))) (car '(1 2)))", 99)
	// Redefining a builtin globally works too.
	m2 := bare(t)
	evalFix(t, m2, "(define (car x) 7) (car '(1 2))", 7)
}

func TestInstructionAndRefCounting(t *testing.T) {
	m := bare(t)
	i0, r0 := m.Insns(), m.Mem.C.Refs()
	m.MustEval("(define (loop n) (if (= n 0) 'done (loop (- n 1)))) (loop 1000)")
	di, dr := m.Insns()-i0, m.Mem.C.Refs()-r0
	if di == 0 || dr == 0 {
		t.Fatal("no instructions or references counted")
	}
	ratio := float64(dr) / float64(di)
	// The paper's programs have roughly 0.27 refs/instruction; our cost
	// table should land in a broadly similar band.
	if ratio < 0.1 || ratio > 0.8 {
		t.Errorf("refs/insn ratio = %.3f, want within [0.1, 0.8]", ratio)
	}
}

func TestFuelLimit(t *testing.T) {
	m := bare(t)
	m.MaxInsns = 10_000
	_, err := m.Eval("(define (f n) (if (= n 0) 0 (f (- n 1)))) (f 1000000)")
	if err != ErrFuelExhausted {
		t.Errorf("err = %v, want ErrFuelExhausted", err)
	}
}

func TestAllocationCounting(t *testing.T) {
	m := bare(t)
	a0 := m.Mem.C.AllocObjects
	m.MustEval("(define (build n) (if (= n 0) '() (cons n (build (- n 1))))) (build 100)")
	if d := m.Mem.C.AllocObjects - a0; d < 100 {
		t.Errorf("allocated %d objects, want >= 100", d)
	}
	if m.Mem.C.AllocWords == 0 {
		t.Error("no words allocated")
	}
}

func TestOnAllocHook(t *testing.T) {
	m := bare(t)
	var count int
	var lastWords int
	m.OnAlloc = func(addr uint64, words int) { count++; lastWords = words }
	m.MustEval("(cons 1 2)")
	if count == 0 {
		t.Fatal("OnAlloc never fired")
	}
	if lastWords != 3 {
		t.Errorf("pair allocation = %d words, want 3 (header + car + cdr)", lastWords)
	}
}

func TestRunWithCollectors(t *testing.T) {
	// The same program must produce the same value under every collector.
	prog := `
		(define (build n) (if (= n 0) '() (cons n (build (- n 1)))))
		(define (sum lst) (if (null? lst) 0 (+ (car lst) (sum (cdr lst)))))
		(define total 0)
		(let loop ((i 0))
		  (if (< i 50)
		      (begin
		        (set! total (+ total (sum (build 100))))
		        (loop (+ i 1)))
		      total))`
	want := int64(50 * 5050)
	for _, mk := range []func() gc.Collector{
		func() gc.Collector { return gc.NewNoGC() },
		func() gc.Collector { return gc.NewCheney(64 << 10) },
		func() gc.Collector { return gc.NewGenerational(16<<10, 128<<10) },
		func() gc.Collector { return gc.NewAggressive(8<<10, 128<<10) },
		func() gc.Collector { return gc.NewMarkSweep(96 << 10) },
	} {
		col := mk()
		m := NewLoaded(nil, col)
		m.MaxInsns = 500_000_000
		w, err := m.Eval(prog)
		if err != nil {
			t.Fatalf("%s: %v", col.Name(), err)
		}
		if got := scheme.FixnumValue(w); got != want {
			t.Errorf("%s: result = %d, want %d", col.Name(), got, want)
		}
		if col.Name() != "none" && col.Stats().Collections == 0 {
			t.Errorf("%s: expected collections during this run", col.Name())
		}
	}
}

func TestTableRehashAfterGC(t *testing.T) {
	// Dynamic keys move during collection; a table keyed by them must
	// still find its entries afterwards, at rehash cost.
	col := gc.NewCheney(32 << 10)
	m := NewLoaded(nil, col)
	m.MaxInsns = 500_000_000
	w, err := m.Eval(`
		(define tbl (make-table))
		(define keys (map (lambda (i) (cons i i)) (iota 50)))
		(for-each (lambda (k) (table-set! tbl k (car k))) keys)
		;; Churn until the collector has run a few times.
		(let loop ((i 0))
		  (if (< i 20000) (begin (cons i i) (loop (+ i 1))) #t))
		;; Every key must still be present.
		(fold-left + 0 (map (lambda (k) (table-ref tbl k -1000)) keys))`)
	if err != nil {
		t.Fatal(err)
	}
	if col.Stats().Collections == 0 {
		t.Fatal("test needs at least one collection")
	}
	if got, want := scheme.FixnumValue(w), int64(49*50/2); got != want {
		t.Errorf("table lost entries across GC: sum = %d, want %d", got, want)
	}
}

func TestDisassembleAndDescribe(t *testing.T) {
	m := bare(t)
	code, err := m.CompileToplevel(mustReadOne(t, "(define (f x) (+ x 1))"))
	if err != nil {
		t.Fatal(err)
	}
	dis := code.Disassemble()
	if !strings.Contains(dis, "toplevel") {
		t.Errorf("disassembly missing name: %s", dis)
	}
	m.MustEval("(define (g x) x)")
	w, _ := m.GlobalRef("g")
	if got := m.DescribeValue(w); got != "#<procedure g>" {
		t.Errorf("procedure prints as %q", got)
	}
	if _, ok := m.GlobalRef("nonexistent"); ok {
		t.Error("GlobalRef invented a binding")
	}
}

func mustReadOne(t *testing.T, src string) scheme.Datum {
	t.Helper()
	d, err := scheme.ReadOne(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSymbolInterning(t *testing.T) {
	m := bare(t)
	a := m.Intern("hello")
	b := m.Intern("hello")
	if a != b {
		t.Error("interning not idempotent")
	}
	if m.SymbolName(a) != "hello" {
		t.Errorf("SymbolName = %q", m.SymbolName(a))
	}
	evalStr(t, m, "(eq? 'abc (string->symbol \"abc\"))", "#t")
}

func TestStackDiscipline(t *testing.T) {
	// After any evaluation the stack pointer must return to its resting
	// position; leaks would eventually overflow.
	m := loaded(t)
	sp0 := m.sp
	m.MustEval("(+ 1 2)")
	m.MustEval("(let ((a 1) (b 2)) (if (< a b) (list a b) 'no))")
	m.MustEval("(map (lambda (x) (let ((y (* x x))) y)) '(1 2 3))")
	if m.sp != sp0 {
		t.Errorf("stack leaked: sp = %d, started at %d", m.sp, sp0)
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() (uint64, uint64, string) {
		m := NewLoaded(nil, gc.NewGenerational(8<<10, 64<<10))
		m.MaxInsns = 500_000_000
		m.MustEval(`
			(define tbl (make-table))
			(let loop ((i 0) (acc '()))
			  (if (< i 2000)
			      (begin
			        (table-set! tbl (cons i i) i)
			        (loop (+ i 1) (cons i acc)))
			      (display (length acc))))`)
		return m.Insns(), m.Mem.C.Refs(), m.Output()
	}
	i1, r1, o1 := run()
	i2, r2, o2 := run()
	if i1 != i2 || r1 != r2 || o1 != o2 {
		t.Errorf("nondeterministic run: (%d,%d,%q) vs (%d,%d,%q)", i1, r1, o1, i2, r2, o2)
	}
}
