package vm

import (
	"testing"

	"gcsim/internal/gc"
)

// Interpreter microbenchmarks: four instruction mixes that isolate the
// hot-path costs the packed-word rewrite targets. Each reports simulated
// insns/s alongside Go's ns/op, so bench-smoke trends catch a dispatch
// regression even when iteration counts drift.
//
//	dispatch  tail-recursive countdown: fetch/decode, a fused
//	          compare+branch, one arithmetic op, one tail call — the
//	          leanest loop this VM can express (loops compile to tail
//	          calls, so this is also the back-edge fuel-check path)
//	arith     the same loop body widened with fixnum arithmetic chains
//	calls     naive fib: non-tail calls, frame pushes, returns
//	cons      list building: allocation and collector pressure (Cheney)

// benchEval evaluates setup once, warms call (compiling and fusing its
// code), then times b.N evaluations of call, reporting simulated
// instruction throughput.
func benchEval(b *testing.B, setup, call string) {
	m := NewLoaded(nil, gc.NewCheney(0))
	m.MaxInsns = 1 << 62
	if _, err := m.Eval(setup); err != nil {
		b.Fatal(err)
	}
	if _, err := m.Eval(call); err != nil {
		b.Fatal(err)
	}
	start := m.Insns()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Eval(call); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	insns := m.Insns() - start
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(insns)/s, "insns/s")
	}
}

func BenchmarkDispatchLoop(b *testing.B) {
	benchEval(b,
		"(define (spin i) (if (eq? i 0) 0 (spin (- i 1))))",
		"(spin 200000)")
}

func BenchmarkArithLoop(b *testing.B) {
	benchEval(b,
		"(define (arith i acc) (if (eq? i 0) acc (arith (- i 1) (+ acc (- (* i 3) (* i 2))))))",
		"(arith 100000 0)")
}

func BenchmarkCallHeavy(b *testing.B) {
	benchEval(b,
		"(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
		"(fib 20)")
}

func BenchmarkConsHeavy(b *testing.B) {
	benchEval(b,
		"(define (build n acc) (if (eq? n 0) acc (build (- n 1) (cons n acc))))",
		"(begin (build 20000 '()) 0)")
}
