package vm

import (
	"strings"
	"testing"

	"gcsim/internal/gc"
	"gcsim/internal/scheme"
)

// Edge-case and regression tests beyond the core semantics suite.

func TestUninternedGensyms(t *testing.T) {
	m := loaded(t)
	// gensym with a prefix produces distinct, printable, collectable
	// symbols that are eq? only to themselves.
	evalStr(t, m, `(symbol? (gensym "v"))`, "#t")
	evalStr(t, m, `(eq? (gensym "v") (gensym "v"))`, "#f")
	w := m.MustEval(`(gensym "tmp")`)
	if name := m.WriteValue(w, true); !strings.HasPrefix(name, "tmp") {
		t.Errorf("gensym prints as %q, want tmp prefix", name)
	}
	// symbol->string works on uninterned symbols.
	evalStr(t, m, `(substring (symbol->string (gensym "pre")) 0 3)`, `"pre"`)
	// Interned symbols are unaffected.
	evalStr(t, m, `(eq? 'abc 'abc)`, "#t")
	// A gensym keyed into an assq list is found by identity.
	evalFix(t, m, `
		(define g (gensym "k"))
		(define alist (list (cons g 42) (cons (gensym "k") 1)))
		(cdr (assq g alist))`, 42)
}

func TestGensymsAreCollected(t *testing.T) {
	col := gc.NewCheney(64 << 10)
	m := NewLoaded(nil, col)
	m.MaxInsns = 500_000_000
	staticBefore := m.Mem.C.StaticWords
	m.MustEval(`
		(let loop ((i 0))
		  (if (< i 20000) (begin (gensym "g") (loop (+ i 1))) 'done))`)
	if col.Stats().Collections == 0 {
		t.Fatal("expected collections from gensym churn")
	}
	// Gensyms must not grow the static area.
	if grown := m.Mem.C.StaticWords - staticBefore; grown > 1000 {
		t.Errorf("gensyms leaked %d words into the static area", grown)
	}
	if col.Stats().LiveAfterLast > 5000 {
		t.Errorf("gensyms not collected: %d words live", col.Stats().LiveAfterLast)
	}
}

func TestInliningDisabledWhenShadowed(t *testing.T) {
	m := bare(t)
	// With a let-bound +, the inline OpAdd must not be used.
	evalFix(t, m, "(let ((+ (lambda (a b) 99))) (+ 1 2))", 99)
	// Wrong arity falls back to the variadic builtin.
	evalFix(t, m, "(+ 1 2 3)", 6)
	evalFix(t, m, "(+)", 0)
	// car used as a value is the builtin closure, not an opcode.
	evalFix(t, m, "((car (list car cdr)) '(7 8))", 7)
}

func TestNestedQuasiquoteInVector(t *testing.T) {
	m := loaded(t)
	evalStr(t, m, "(define v 9) `#(1 ,v ,@(list 2 3))", "#(1 9 2 3)")
}

func TestLetrecMutualShadowing(t *testing.T) {
	m := bare(t)
	evalFix(t, m, `
		(define (f) 1)
		(letrec ((f (lambda (n) (if (= n 0) 10 (g (- n 1)))))
		         (g (lambda (n) (f n))))
		  (f 3))`, 10)
	// The global f is untouched.
	evalFix(t, m, "(f)", 1)
}

func TestApplyTailPosition(t *testing.T) {
	m := loaded(t)
	// apply in tail position must not grow the stack.
	evalFix(t, m, `
		(define (loop n acc)
		  (if (= n 0) acc (apply loop (list (- n 1) (+ acc 1)))))
		(loop 50000 0)`, 50000)
}

func TestVariadicClosureCapture(t *testing.T) {
	m := loaded(t)
	evalStr(t, m, `
		(define (tag . items)
		  (lambda () items))
		((tag 1 2 3))`, "(1 2 3)")
}

func TestLongStrings(t *testing.T) {
	m := loaded(t)
	evalFix(t, m, `
		(define s (string-join (map number->string (iota 100)) "-"))
		(string-length s)`, 289)
	evalStr(t, m, "(substring s 0 7)", `"0-1-2-3"`)
	evalStr(t, m, "(string=? (string-copy s) s)", "#t")
}

func TestTableListDeterministic(t *testing.T) {
	m := loaded(t)
	m.MustEval(`
		(define t1 (make-table))
		(for-each (lambda (i) (table-set! t1 i i)) (iota 40))`)
	a := m.DescribeValue(m.MustEval("(table->list t1)"))
	b := m.DescribeValue(m.MustEval("(table->list t1)"))
	if a != b {
		t.Error("table->list order unstable")
	}
}

func TestFixnumOverflowChecked(t *testing.T) {
	m := bare(t)
	for _, src := range []string{
		"(* 1152921504606846975 1152921504606846975)",
		"(+ 1152921504606846975 1152921504606846975)",
		"(expt 10 40)",
	} {
		if _, err := m.Eval(src); err == nil {
			t.Errorf("Eval(%q) should overflow", src)
		}
	}
	// Near-limit values still work.
	evalFix(t, m, "(+ 1152921504606846974 1)", scheme.FixnumMax)
}

func TestDeepNonTailRecursion(t *testing.T) {
	m := bare(t)
	evalFix(t, m, `
		(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1)))))
		(sum 20000)`, 20000*20001/2)
}

func TestStackOverflowIsError(t *testing.T) {
	m := bare(t)
	_, err := m.Eval(`
		(define (deep n) (+ 1 (deep (+ n 1))))
		(deep 0)`)
	if err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Errorf("err = %v, want stack overflow", err)
	}
}

func TestMutationAcrossCollections(t *testing.T) {
	// set-car! on an old object pointing at young data, repeatedly, under
	// the generational collector: the write barrier must keep everything
	// reachable through many minor collections.
	col := gc.NewGenerational(8<<10, 256<<10)
	m := NewLoaded(nil, col)
	m.MaxInsns = 500_000_000
	v, err := m.Eval(`
		(define holder (cons 0 0))
		(let loop ((i 0))
		  (if (= i 20000)
		      (car holder)
		      (begin
		        (set-car! holder (cons i i))
		        (loop (+ i 1)))))
		(car (car holder))`)
	if err != nil {
		t.Fatal(err)
	}
	if col.Stats().BarrierHits == 0 {
		t.Error("no barrier hits recorded")
	}
	if got := scheme.FixnumValue(v); got != 19999 {
		t.Errorf("mutation lost: %d", got)
	}
}

func TestVectorsOfVectorsSurviveGC(t *testing.T) {
	for _, mk := range []func() gc.Collector{
		func() gc.Collector { return gc.NewCheney(32 << 10) },
		func() gc.Collector { return gc.NewMarkSweep(32 << 10) },
	} {
		col := mk()
		m := NewLoaded(nil, col)
		m.MaxInsns = 500_000_000
		v, err := m.Eval(`
			(define grid (vector-map (lambda (i) (make-vector 4 i)) (list->vector (iota 16))))
			(let churn ((i 0))
			  (if (< i 30000) (begin (cons i i) (churn (+ i 1))) 'ok))
			(fold-left + 0 (map (lambda (row) (vector-ref row 2))
			                    (vector->list grid)))`)
		if err != nil {
			t.Fatalf("%s: %v", col.Name(), err)
		}
		if col.Stats().Collections == 0 {
			t.Fatalf("%s: no collections", col.Name())
		}
		if got := scheme.FixnumValue(v); got != 120 {
			t.Errorf("%s: grid corrupted: %d, want 120", col.Name(), got)
		}
	}
}

func TestFlonumsSurviveGC(t *testing.T) {
	col := gc.NewCheney(16 << 10)
	m := NewLoaded(nil, col)
	m.MaxInsns = 500_000_000
	v, err := m.Eval(`
		(define pi-ish 3.14159)
		(let churn ((i 0) (acc 0.0))
		  (if (< i 5000)
		      (churn (+ i 1) (+ acc 0.001))
		      (inexact->exact (floor (* 1000.0 (+ pi-ish (- acc acc)))))))`)
	if err != nil {
		t.Fatal(err)
	}
	if scheme.FixnumValue(v) != 3141 {
		t.Errorf("flonum corrupted across GC: %d", scheme.FixnumValue(v))
	}
}

func TestDisassemblyShape(t *testing.T) {
	m := bare(t)
	code, err := m.CompileToplevel(mustReadOne(t, "(define (f x) (car (cons x 1)))"))
	if err != nil {
		t.Fatal(err)
	}
	dis := code.Disassemble()
	if !strings.Contains(dis, "set-global") {
		t.Errorf("toplevel define should set a global:\n%s", dis)
	}
	// The inner lambda must use inlined cons/car (find its code object).
	found := false
	for i := 0; i < m.CodeCount(); i++ {
		d := m.codes[i].Disassemble()
		if strings.Contains(d, "cons") && strings.Contains(d, "car") {
			found = true
		}
	}
	if !found {
		t.Error("cons/car not inlined in any code object")
	}
}

func TestMaterializeSharingOfSymbols(t *testing.T) {
	m := bare(t)
	a := m.Materialize(scheme.Sym("shared"))
	b := m.Materialize(scheme.List(scheme.Sym("shared"), scheme.Sym("shared")))
	if m.car(b) != a || m.car(m.cdr(b)) != a {
		t.Error("materialized symbols not shared")
	}
}

func TestEmptyBodiesAndWeirdArity(t *testing.T) {
	m := bare(t)
	if _, err := m.Eval("(lambda ())"); err == nil {
		t.Error("empty lambda accepted")
	}
	evalStr(t, m, "(begin)", "#!unspecific")
	evalFix(t, m, "((lambda args (length args)) 1 2 3 4 5)", 5)
}
