;;; Conformance suite: exercises the Scheme dialect from inside the
;;; simulated machine. Each check compares an expression's value against
;;; its expected value with equal?; failures are counted and named on the
;;; output port. The suite's value is the failure count — zero on a
;;; healthy system. It runs under every collector in the Go tests, so it
;;; doubles as a GC torture test.

(define conformance-failures 0)

(define (check name actual expected)
  (if (equal? actual expected)
      (void)
      (begin
        (set! conformance-failures (+ conformance-failures 1))
        (display "FAIL: ") (display name)
        (display " got ") (write actual)
        (display " want ") (write expected)
        (newline))))

;;; ---- numbers ----
(check 'add (+ 1 2 3) 6)
(check 'add-empty (+) 0)
(check 'sub (- 10 1 2) 7)
(check 'neg (- 5) -5)
(check 'mul (* 2 3 4) 24)
(check 'div-exact (/ 12 4) 3)
(check 'div-inexact (/ 1 4) 0.25)
(check 'quotient (quotient -7 2) -3)
(check 'remainder (remainder -7 2) -1)
(check 'modulo (modulo -7 2) 1)
(check 'min-max (list (min 3 1 2) (max 3 1 2)) '(1 3))
(check 'abs (list (abs -3) (abs 3) (abs -2.5)) '(3 3 2.5))
(check 'expt (expt 3 4) 81)
(check 'expt-flo (expt 2.0 3) 8.0)
(check 'sqrt (sqrt 16.0) 4.0)
(check 'floor-ceil (list (floor 2.7) (ceiling 2.3) (round 2.5) (truncate -2.7))
       (list 2.0 3.0 2.0 -2.0))
(check 'exactness (list (exact->inexact 2) (inexact->exact 2.0)) '(2.0 2))
(check 'predicates (list (zero? 0) (positive? 2) (negative? -2) (even? 4) (odd? 3))
       '(#t #t #t #t #t))
(check 'compare (list (< 1 2 3) (<= 2 2) (> 3 1) (>= 2 3) (= 1 1 1))
       '(#t #t #t #f #t))
(check 'mixed-compare (< 1 1.5 2) #t)
(check 'number-string (list (number->string 42) (string->number "17") (string->number "2.5"))
       '("42" 17 2.5))
(check 'bitwise (list (bitwise-and 12 10) (bitwise-or 12 10) (bitwise-xor 12 10)
                      (arithmetic-shift 1 5) (arithmetic-shift 32 -5))
       '(8 14 6 32 1))
(check 'num-preds (list (number? 1) (number? 1.5) (number? 'a)
                        (integer? 3) (integer? 3.0) (integer? 3.5))
       '(#t #t #f #t #t #f))

;;; ---- booleans and equivalence ----
(check 'truth (list (if 0 'y 'n) (if "" 'y 'n) (if '() 'y 'n) (if #f 'y 'n))
       '(y y y n))
(check 'not (list (not #f) (not 0) (not '())) '(#t #f #f))
(check 'eq-symbols (eq? 'a 'a) #t)
(check 'eqv-numbers (list (eqv? 2 2) (eqv? 2.5 2.5) (eqv? 2 2.0)) '(#t #t #f))
(check 'equal-deep (equal? '(1 (2 #(3 "four"))) (list 1 (list 2 (vector 3 "four")))) #t)

;;; ---- pairs and lists ----
(check 'cons-car-cdr (let ((p (cons 1 2))) (list (car p) (cdr p) (pair? p))) '(1 2 #t))
(check 'list-basics (list (length '(a b c)) (list-ref '(a b c) 1) (list? '(1 2)))
       '(3 b #t))
(check 'append3 (append '(1) '(2 3) '() '(4)) '(1 2 3 4))
(check 'reverse (reverse '(1 2 3)) '(3 2 1))
(check 'list-tail (list-tail '(a b c d) 2) '(c d))
(check 'assq (assq 'b '((a . 1) (b . 2))) '(b . 2))
(check 'assoc (assoc "k" '(("j" . 1) ("k" . 2))) '("k" . 2))
(check 'memq (memq 'c '(a b c d)) '(c d))
(check 'member (member '(x) '((w) (x) (y))) '((x) (y)))
(check 'set-car (let ((p (cons 1 2))) (set-car! p 9) p) '(9 . 2))
(check 'set-cdr (let ((p (cons 1 2))) (set-cdr! p 9) p) '(1 . 9))
(check 'improper '(1 2 . 3) (cons 1 (cons 2 3)))
(check 'cxr (list (caar '((1) 2)) (cadr '(1 2)) (cddr '(1 2 3)) (caddr '(1 2 3)))
       '(1 2 (3) 3))

;;; ---- vectors ----
(check 'vector-basics
       (let ((v (make-vector 3 'x)))
         (vector-set! v 1 'y)
         (list (vector-length v) (vector-ref v 0) (vector-ref v 1) (vector? v)))
       '(3 x y #t))
(check 'vector-conv (list (vector->list #(1 2)) (list->vector '(3 4)))
       (list '(1 2) #(3 4)))
(check 'vector-fill (let ((v (make-vector 2 0))) (vector-fill! v 7) (vector->list v)) '(7 7))

;;; ---- strings and chars ----
(check 'string-basics (list (string-length "hello") (string-ref "abc" 2)
                            (substring "hello" 1 4))
       (list 5 #\c "ell"))
(check 'string-append (string-append "a" "" "bc") "abc")
(check 'string-compare (list (string=? "ab" "ab") (string<? "ab" "b")) '(#t #t))
(check 'string-conv (list (string->list "hi") (list->string (list #\h #\i))
                          (string->symbol "sym") (symbol->string 'sym))
       (list (list #\h #\i) "hi" 'sym "sym"))
(check 'char-ops (list (char->integer #\a) (integer->char 98)
                       (char-upcase #\q) (char-downcase #\Q)
                       (char-alphabetic? #\z) (char-numeric? #\5)
                       (char-whitespace? #\space))
       (list 97 #\b #\Q #\q #t #t #t))

;;; ---- control and binding forms ----
(check 'let-shadow (let ((x 1)) (let ((x 2) (y x)) (list x y))) '(2 1))
(check 'let-star (let* ((x 1) (y (+ x 1)) (z (* y 2))) z) 4)
(check 'letrec-mutual
       (letrec ((e? (lambda (n) (if (= n 0) #t (o? (- n 1)))))
                (o? (lambda (n) (if (= n 0) #f (e? (- n 1))))))
         (list (e? 8) (o? 8)))
       '(#t #f))
(check 'named-let (let go ((i 0) (acc '())) (if (= i 3) acc (go (+ i 1) (cons i acc))))
       '(2 1 0))
(check 'do-loop (do ((i 0 (+ i 1)) (s 0 (+ s i))) ((= i 4) s)) 6)
(check 'cond-arrow (cond ((assq 'b '((a 1) (b 2))) => cadr) (else 'no)) 2)
(check 'cond-test-only (cond (#f 1) (42) (else 2)) 42)
(check 'case-else (case 99 ((1) 'one) (else 'other)) 'other)
(check 'case-list (case 2 ((1 2 3) 'small) (else 'big)) 'small)
(check 'and-or (list (and 1 2) (and #f 2) (or #f 3) (or 4 (error "no"))) '(2 #f 3 4))
(check 'when-unless (list (when #t 'a) (unless #f 'b)) '(a b))
(check 'begin-order (let ((x 0)) (begin (set! x 1) (set! x (+ x 1)) x)) 2)

;;; ---- closures and higher-order functions ----
(check 'closure-capture ((let ((n 10)) (lambda (x) (+ x n))) 5) 15)
(check 'closure-mutation
       (let* ((counter (let ((n 0)) (lambda () (set! n (+ n 1)) n))))
         (counter) (counter) (counter))
       3)
(check 'rest-args ((lambda (a . rest) (list a rest)) 1 2 3) '(1 (2 3)))
(check 'all-rest ((lambda args args) 1 2) '(1 2))
(check 'apply-spread (apply + 1 2 '(3 4)) 10)
(check 'map2 (map + '(1 2 3) '(10 20 30)) '(11 22 33))
(check 'map-closures (map (lambda (f) (f 10)) (list 1+ -1+ (lambda (x) (* x x))))
       '(11 9 100))
(check 'filter-fold (fold-left + 0 (filter even? (iota 10))) 20)
(check 'fold-right-order (fold-right cons '() '(1 2 3)) '(1 2 3))
(check 'sort-stable (sort '(3 1 2 1) <) '(1 1 2 3))
(check 'compose
       (let ((compose (lambda (f g) (lambda (x) (f (g x))))))
         ((compose (lambda (x) (* 2 x)) 1+) 20))
       42)
(check 'deep-tail
       (let loop ((i 0) (acc 0)) (if (= i 100000) acc (loop (+ i 1) (+ acc 1))))
       100000)

;;; ---- quasiquote ----
(check 'qq-basic `(1 ,(+ 1 1) ,@(list 3 4)) '(1 2 3 4))
(check 'qq-nested `(a `(b ,(c ,(+ 1 2)))) '(a (quasiquote (b (unquote (c 3))))))
(check 'qq-vector `#(1 ,(+ 1 1)) #(1 2))

;;; ---- tables ----
(check 'table-ops
       (let ((t (make-table)))
         (table-set! t 'a 1)
         (table-set! t 'b 2)
         (table-set! t 'a 10)
         (list (table-ref t 'a 0) (table-ref t 'b 0) (table-ref t 'zz 99)
               (table-count t)))
       '(10 2 99 2))
(check 'table-growth
       (let ((t (make-table)))
         (for-each (lambda (i) (table-set! t i (* i i))) (iota 200))
         (list (table-count t) (table-ref t 150 -1)))
       '(200 22500))

;;; ---- symbols and gensyms ----
(check 'gensym-distinct (eq? (gensym) (gensym)) #f)
(check 'gensym-symbolp (symbol? (gensym "pfx")) #t)
(check 'intern-stable (eq? 'hello (string->symbol (string-append "he" "llo"))) #t)

;;; ---- internal defines ----
(check 'internal-defines
       (let ((unused 0))
         (define (f x) (g (+ x 1)))
         (define (g x) (* x 2))
         (f 4))
       10)

;;; ---- deep structural work (GC torture when run with collectors) ----
(check 'tree-sum
       (let ()
         (define (build d) (if (= d 0) 1 (cons (build (- d 1)) (build (- d 1)))))
         (define (total t) (if (pair? t) (+ (total (car t)) (total (cdr t))) t))
         (total (build 12)))
       4096)
(check 'church-list
       (length
        (let loop ((i 0) (acc '()))
          (if (= i 2000) acc (loop (+ i 1) (cons (make-vector 3 i) acc)))))
       2000)

;;; The suite's value: the number of failures (zero when healthy).
conformance-failures
