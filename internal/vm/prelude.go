package vm

import (
	_ "embed"
	"fmt"

	"gcsim/internal/gc"
	"gcsim/internal/mem"
)

//go:embed prelude.scm
var preludeSource string

// LoadPrelude compiles and runs the Scheme-level runtime library. Most
// machines should call it right after New; it is separate so that low-level
// tests can run on a bare machine.
func (vm *Machine) LoadPrelude() error {
	_, err := vm.Eval(preludeSource)
	return err
}

// NewLoaded builds a machine and loads the prelude, panicking on failure
// (the prelude is part of the system, so failure is a build error, not a
// user error).
func NewLoaded(tracer mem.Tracer, col gc.Collector) *Machine {
	vm := New(tracer, col)
	if err := vm.LoadPrelude(); err != nil {
		panic(fmt.Sprintf("vm: prelude failed to load: %v", err))
	}
	return vm
}
