package vm

import (
	"sync"
	"testing"

	"gcsim/internal/scheme"
)

// fuzzMachine is shared across fuzz iterations (and guarded against the
// fuzzer's parallel workers): compiling accumulates global cells exactly
// as a long-lived REPL would, which is itself part of the surface under
// test. Nothing compiled here is ever executed.
var fuzzMachine struct {
	once sync.Once
	mu   sync.Mutex
	m    *Machine
}

// FuzzCompile checks the compiler's total-function property: any datum
// sequence the reader accepts either compiles or reports a CompileError —
// it never panics and never runs the program. (Without -fuzz, go test
// runs the seed corpus.)
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"(define (f x) (+ x 1))",
		"(lambda (a . rest) (apply + a rest))",
		"(let loop ((i 0)) (if (= i 10) i (loop (+ i 1))))",
		"(letrec ((even? (lambda (n) (if (= n 0) #t (odd? (- n 1))))) (odd? (lambda (n) (if (= n 0) #f (even? (- n 1)))))) (even? 4))",
		"(define-syntax swap! (syntax-rules () ((_ a b) (let ((tmp a)) (set! a b) (set! b tmp)))))",
		"(quasiquote (1 (unquote (+ 1 1)) (unquote-splicing (list 3 4))))",
		"(case 3 ((1 2) 'low) ((3 4) 'mid) (else 'high))",
		"(do ((i 0 (+ i 1)) (acc '() (cons i acc))) ((= i 5) acc))",
		"(set! undefined-global 42)",
		"(if)",
		"(lambda)",
		"(let ((x)) x)",
		"((((()))))",
		"(quote)",
		"(define 3 4)",
		"(begin)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		data, err := scheme.ReadAll(src)
		if err != nil {
			return
		}
		fuzzMachine.once.Do(func() { fuzzMachine.m = NewLoaded(nil, nil) })
		fuzzMachine.mu.Lock()
		defer fuzzMachine.mu.Unlock()
		for _, d := range data {
			code, err := fuzzMachine.m.CompileToplevel(d)
			if err == nil && code == nil {
				t.Fatalf("nil code with nil error for %q", src)
			}
		}
	})
}
