package vm

import (
	"strings"
	"testing"

	"gcsim/internal/scheme"
)

// Tests of the compiler's internal decisions: expansion shapes, lexical
// resolution, closure conversion, boxing, and inlining.

func compileBody(t *testing.T, m *Machine, src string) *Code {
	t.Helper()
	code, err := m.CompileToplevel(mustReadOne(t, src))
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return code
}

// lastLambda returns the most recently compiled non-toplevel code object.
func lastLambda(m *Machine) *Code {
	for i := m.CodeCount() - 1; i >= 0; i-- {
		c := m.codes[i]
		if c.Name != "toplevel" && c.Prim < 0 {
			return c
		}
	}
	return nil
}

func countOps(c *Code, op Op) int {
	n := 0
	for _, in := range c.Instrs {
		if in.Op == op {
			n++
		}
	}
	return n
}

func TestExpanderShapes(t *testing.T) {
	c := &compiler{vm: bare(t), redefined: map[string]bool{}}
	cases := map[string]string{
		"(and)":                       "(quote #t)",
		"(or)":                        "(quote #f)",
		"(and 1 2)":                   "(if 1 2 #f)",
		"(when 1 2)":                  "(if 1 (begin 2) ",
		"(let* ((a 1)) a)":            "(let ((a 1)) a)",
		"(case x ((1) 'a) (else 'b))": "memv",
		"(cond (else 5))":             "(begin 5)",
		"`(a ,b)":                     "(cons (quote a) (cons b (quote ())))",
	}
	for src, want := range cases {
		d := c.expand(mustReadOne(t, src))
		got := scheme.WriteDatum(d)
		if !strings.Contains(got, strings.TrimSuffix(want, " ")) {
			t.Errorf("expand(%s) = %s, want it to contain %s", src, got, want)
		}
	}
}

func TestTailCallsCompiledAsTailCalls(t *testing.T) {
	m := bare(t)
	compileBody(t, m, "(define (loop n) (if (= n 0) 'done (loop (- n 1))))")
	code := lastLambda(m)
	if code == nil {
		t.Fatal("no lambda compiled")
	}
	if countOps(code, OpTailCall) != 1 {
		t.Errorf("expected one tail call:\n%s", code.Disassemble())
	}
	if countOps(code, OpCall) != 0 {
		t.Errorf("self-call should not use OpCall:\n%s", code.Disassemble())
	}
}

func TestNonTailCallsGetFrames(t *testing.T) {
	m := bare(t)
	compileBody(t, m, "(define (f n) (+ 1 (f n)))")
	code := lastLambda(m)
	if countOps(code, OpFrame) != 1 || countOps(code, OpCall) != 1 {
		t.Errorf("non-tail call shape wrong:\n%s", code.Disassemble())
	}
	// The frame operand must point just past the call.
	for pc, in := range code.Instrs {
		if in.Op == OpFrame {
			target := int(in.A)
			if target <= pc || code.Instrs[target-1].Op != OpCall {
				t.Errorf("frame return pc %d not after its call:\n%s", target, code.Disassemble())
			}
		}
	}
}

func TestInlinePrimitivesEmitted(t *testing.T) {
	m := bare(t)
	compileBody(t, m, "(define (f p) (cons (car p) (cdr p)))")
	code := lastLambda(m)
	if countOps(code, OpCons) != 1 || countOps(code, OpCar) != 1 || countOps(code, OpCdr) != 1 {
		t.Errorf("primitives not inlined:\n%s", code.Disassemble())
	}
	if countOps(code, OpCall) != 0 {
		t.Errorf("inlined body should make no calls:\n%s", code.Disassemble())
	}
}

func TestInliningSuppressedByRedefinition(t *testing.T) {
	m := bare(t)
	// Program-level redefinition is detected by the prepass.
	src := "(define (car x) 99) (define (use p) (car p))"
	forms, err := scheme.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	c := &compiler{vm: m, redefined: map[string]bool{}}
	for _, f := range forms {
		c.noteRedefinitions(f)
	}
	if !c.redefined["car"] {
		t.Fatal("prepass missed the car redefinition")
	}
	code, err := c.compileToplevel(forms[1])
	if err != nil {
		t.Fatal(err)
	}
	_ = code
	inner := lastLambda(m)
	if countOps(inner, OpCar) != 0 {
		t.Errorf("car inlined despite redefinition:\n%s", inner.Disassemble())
	}
	if countOps(inner, OpTailCall) != 1 {
		t.Errorf("redefined car should be a general call:\n%s", inner.Disassemble())
	}
}

func TestFreeVariableCapture(t *testing.T) {
	m := bare(t)
	compileBody(t, m, "(define (outer a b) (lambda (x) (+ a (+ b x))))")
	// The inner, anonymous one-argument lambda is compiled before its
	// parent; find it by shape.
	var inner *Code
	for i := 0; i < m.CodeCount(); i++ {
		if c := m.codes[i]; c.Prim < 0 && c.Name == "" && c.NArgs == 1 {
			inner = c
		}
	}
	if inner == nil {
		t.Fatal("inner lambda not found")
	}
	if inner.NFree != 2 {
		t.Errorf("inner lambda captures %d free vars, want 2:\n%s",
			inner.NFree, inner.Disassemble())
	}
	if countOps(inner, OpFree) != 2 {
		t.Errorf("free refs wrong:\n%s", inner.Disassemble())
	}
	// The enclosing lambda loads both locals to build the closure.
	outer := lastLambda(m)
	if countOps(outer, OpClosure) != 1 || countOps(outer, OpPush) != 2 {
		t.Errorf("capture loads wrong:\n%s", outer.Disassemble())
	}
}

func TestTransitiveCapture(t *testing.T) {
	m := bare(t)
	// c is two lambda levels up: the middle lambda must capture it too,
	// purely to pass it through to the innermost one.
	compileBody(t, m, "(define (f c) (lambda (y) (lambda (z) c)))")
	var innermost, middle *Code
	for i := 0; i < m.CodeCount(); i++ {
		code := m.codes[i]
		if code.Prim >= 0 || code.Name != "" {
			continue
		}
		if countOps(code, OpClosure) == 0 {
			innermost = code
		} else {
			middle = code
		}
	}
	if innermost == nil || middle == nil {
		t.Fatal("lambda shapes not found")
	}
	if innermost.NFree != 1 {
		t.Errorf("innermost captures %d, want 1:\n%s", innermost.NFree, innermost.Disassemble())
	}
	if middle.NFree != 1 {
		t.Errorf("middle captures %d, want 1 (pass-through):\n%s", middle.NFree, middle.Disassemble())
	}
	// The middle lambda loads c from its own free list when building the
	// inner closure.
	if countOps(middle, OpFree) != 1 {
		t.Errorf("middle should load its free var:\n%s", middle.Disassemble())
	}
}

func TestBoxingOnlyWhenAssigned(t *testing.T) {
	m := bare(t)
	compileBody(t, m, "(define (clean a) (+ a 1))")
	clean := lastLambda(m)
	if countOps(clean, OpBox) != 0 {
		t.Errorf("unassigned parameter boxed:\n%s", clean.Disassemble())
	}
	m2 := bare(t)
	compileBody(t, m2, "(define (dirty a) (set! a 2) a)")
	dirty := lastLambda(m2)
	if countOps(dirty, OpBox) != 1 {
		t.Errorf("assigned parameter not boxed:\n%s", dirty.Disassemble())
	}
	if countOps(dirty, OpBoxRef) == 0 || countOps(dirty, OpBoxSet) == 0 {
		t.Errorf("boxed accesses missing:\n%s", dirty.Disassemble())
	}
}

func TestShadowingSuppressesBoxing(t *testing.T) {
	m := bare(t)
	// The set! targets the inner x, so the outer x stays unboxed.
	compileBody(t, m, "(define (f x) (let ((g (lambda (x) (set! x 1) x))) (+ x (g 2))))")
	var outer *Code
	for i := 0; i < m.CodeCount(); i++ {
		if m.codes[i].Name == "f" {
			outer = m.codes[i]
		}
	}
	if outer == nil {
		t.Fatal("f not found")
	}
	// f's parameter x should not be boxed (the inner lambda shadows it).
	if outer.Instrs[0].Op == OpLocal && outer.Instrs[1].Op == OpBox {
		t.Errorf("outer x boxed despite shadowing:\n%s", outer.Disassemble())
	}
}

func TestConstantsDeduplicated(t *testing.T) {
	m := bare(t)
	code := compileBody(t, m, "(cons 7 (cons 7 7))")
	sevens := 0
	for _, c := range code.Consts {
		if scheme.IsFixnum(c) && scheme.FixnumValue(c) == 7 {
			sevens++
		}
	}
	if sevens != 1 {
		t.Errorf("constant 7 appears %d times in the pool", sevens)
	}
}

func TestGlobalCellsShared(t *testing.T) {
	m := bare(t)
	code := compileBody(t, m, "(begin (display 1) (display 2))")
	displays := 0
	for _, g := range code.Globals {
		if g == "display" {
			displays++
		}
	}
	if displays != 1 {
		t.Errorf("display cell duplicated: %v", code.Globals)
	}
}

func TestLetCompilesToStackSlots(t *testing.T) {
	m := bare(t)
	compileBody(t, m, "(define (f) (let ((a 1) (b 2)) (+ a b)))")
	code := lastLambda(m)
	// No closure allocation for a simple let.
	if countOps(code, OpClosure) != 0 {
		t.Errorf("let created a closure:\n%s", code.Disassemble())
	}
	if countOps(code, OpLocal) < 2 {
		t.Errorf("let bindings not on the stack:\n%s", code.Disassemble())
	}
}

func TestCompileErrorsCarryForms(t *testing.T) {
	m := bare(t)
	_, err := m.CompileToplevel(mustReadOne(t, "(if)"))
	if err == nil {
		t.Fatal("bad if accepted")
	}
	ce, ok := err.(*CompileError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if !strings.Contains(ce.Error(), "if") {
		t.Errorf("error message lacks the form: %v", ce)
	}
}

func TestAssignedInAnalysis(t *testing.T) {
	read := func(s string) scheme.Datum { return mustReadOne(t, s) }
	cases := []struct {
		name string
		body string
		want bool
	}{
		{"x", "(set! x 1)", true},
		{"x", "(set! y 1)", false},
		{"x", "(lambda (x) (set! x 1))", false}, // shadowed
		{"x", "(lambda (y) (set! x 1))", true},
		{"x", "(let ((x 1)) (set! x 2))", false}, // shadowed
		{"x", "(let ((y (set! x 1))) y)", true},  // assigned in init
		{"x", "(quote (set! x 1))", false},       // quoted
		{"x", "(if a (set! x 1) b)", true},
		{"x", "(set! y (set! x 1))", true}, // nested in another set!'s value
	}
	for _, cse := range cases {
		got := assignedIn(cse.name, []scheme.Datum{read(cse.body)})
		if got != cse.want {
			t.Errorf("assignedIn(%s, %s) = %v, want %v", cse.name, cse.body, got, cse.want)
		}
	}
}
