package vm

import (
	"math"
	"strconv"
	"strings"

	"gcsim/internal/scheme"
)

// The builtin library. Each builtin is an ordinary first-class closure
// whose code object is a two-instruction stub [prim i; return], so builtins
// can be passed to map, stored in data structures, and applied. Builtin
// bodies read their arguments from the stack through traced loads and
// charge an instruction cost approximating a compiled implementation.

type builtinFn func(vm *Machine, n int) Word

type builtin struct {
	Name     string
	MinArgs  int
	Variadic bool
	Cost     uint64
	Fn       builtinFn
}

var builtins []builtin

func def(name string, minArgs int, variadic bool, cost uint64, fn builtinFn) {
	builtins = append(builtins, builtin{name, minArgs, variadic, cost, fn})
}

// installBuiltins compiles the stub code objects and binds the globals.
// The apply stub uses OpApply, which re-dispatches in the interpreter.
func (vm *Machine) installBuiltins() {
	for i := range builtins {
		code := &Code{
			Name: builtins[i].Name, Prim: i,
			Instrs: []Instr{{Op: OpPrim, A: int32(i)}, {Op: OpReturn}},
		}
		vm.addCode(code)
		addr := vm.allocStaticObject(scheme.KindClosure, []Word{scheme.FromFixnum(int64(code.idx))})
		vm.DefineGlobal(builtins[i].Name, scheme.FromPtr(addr))
	}
	applyCode := &Code{Name: "apply", Prim: len(builtins), Instrs: []Instr{{Op: OpApply}}}
	vm.addCode(applyCode)
	addr := vm.allocStaticObject(scheme.KindClosure, []Word{scheme.FromFixnum(int64(applyCode.idx))})
	vm.DefineGlobal("apply", scheme.FromPtr(addr))
}

func init() {
	defNumeric()
	defPredicates()
	defLists()
	defVectors()
	defStrings()
	defChars()
	defTables()
	defIO()
	defMisc()
}

func defNumeric() {
	def("+", 0, true, 4, func(vm *Machine, n int) Word {
		acc := Word(scheme.FromFixnum(0))
		for i := 0; i < n; i++ {
			acc = vm.numAdd(acc, vm.arg(i))
		}
		return acc
	})
	def("-", 1, true, 4, func(vm *Machine, n int) Word {
		if n == 1 {
			return vm.numSub(scheme.FromFixnum(0), vm.arg(0))
		}
		acc := vm.arg(0)
		for i := 1; i < n; i++ {
			acc = vm.numSub(acc, vm.arg(i))
		}
		return acc
	})
	def("*", 0, true, 5, func(vm *Machine, n int) Word {
		acc := Word(scheme.FromFixnum(1))
		for i := 0; i < n; i++ {
			acc = vm.numMul(acc, vm.arg(i))
		}
		return acc
	})
	def("/", 1, true, 8, func(vm *Machine, n int) Word {
		if n == 1 {
			return vm.numDiv(scheme.FromFixnum(1), vm.arg(0))
		}
		acc := vm.arg(0)
		for i := 1; i < n; i++ {
			acc = vm.numDiv(acc, vm.arg(i))
		}
		return acc
	})
	cmp := func(name string, ok func(int) bool) {
		def(name, 2, true, 4, func(vm *Machine, n int) Word {
			for i := 0; i < n-1; i++ {
				if !ok(vm.numCompare(vm.arg(i), vm.arg(i+1), name)) {
					return scheme.False
				}
			}
			return scheme.True
		})
	}
	cmp("=", func(c int) bool { return c == 0 })
	cmp("<", func(c int) bool { return c < 0 })
	cmp("<=", func(c int) bool { return c <= 0 })
	cmp(">", func(c int) bool { return c > 0 })
	cmp(">=", func(c int) bool { return c >= 0 })

	def("quotient", 2, false, 6, func(vm *Machine, n int) Word { return vm.quotient(vm.arg(0), vm.arg(1)) })
	def("remainder", 2, false, 6, func(vm *Machine, n int) Word { return vm.remainder(vm.arg(0), vm.arg(1)) })
	def("modulo", 2, false, 7, func(vm *Machine, n int) Word { return vm.modulo(vm.arg(0), vm.arg(1)) })
	def("abs", 1, false, 3, func(vm *Machine, n int) Word {
		w := vm.arg(0)
		if scheme.IsFixnum(w) {
			v := scheme.FixnumValue(w)
			if v < 0 {
				v = -v
			}
			return scheme.FromFixnum(v)
		}
		return vm.flonum(math.Abs(vm.toFloat(w, "abs")))
	})
	def("min", 1, true, 4, func(vm *Machine, n int) Word {
		acc := vm.arg(0)
		for i := 1; i < n; i++ {
			if vm.numCompare(vm.arg(i), acc, "min") < 0 {
				acc = vm.arg(i)
			}
		}
		return acc
	})
	def("max", 1, true, 4, func(vm *Machine, n int) Word {
		acc := vm.arg(0)
		for i := 1; i < n; i++ {
			if vm.numCompare(vm.arg(i), acc, "max") > 0 {
				acc = vm.arg(i)
			}
		}
		return acc
	})
	def("number?", 1, false, 2, func(vm *Machine, n int) Word { return scheme.FromBool(vm.isNumber(vm.arg(0))) })
	def("integer?", 1, false, 2, func(vm *Machine, n int) Word {
		w := vm.arg(0)
		if scheme.IsFixnum(w) {
			return scheme.True
		}
		if vm.isFlonum(w) {
			f := vm.flonumValue(w)
			return scheme.FromBool(f == math.Trunc(f))
		}
		return scheme.False
	})
	def("real?", 1, false, 2, func(vm *Machine, n int) Word { return scheme.FromBool(vm.isNumber(vm.arg(0))) })
	def("positive?", 1, false, 3, func(vm *Machine, n int) Word {
		return scheme.FromBool(vm.numCompare(vm.arg(0), scheme.FromFixnum(0), "positive?") > 0)
	})
	def("negative?", 1, false, 3, func(vm *Machine, n int) Word {
		return scheme.FromBool(vm.numCompare(vm.arg(0), scheme.FromFixnum(0), "negative?") < 0)
	})
	def("even?", 1, false, 3, func(vm *Machine, n int) Word {
		return scheme.FromBool(vm.fixnumArg(vm.arg(0), "even?")%2 == 0)
	})
	def("odd?", 1, false, 3, func(vm *Machine, n int) Word {
		return scheme.FromBool(vm.fixnumArg(vm.arg(0), "odd?")%2 != 0)
	})
	f1 := func(name string, f func(float64) float64) {
		def(name, 1, false, 20, func(vm *Machine, n int) Word { return vm.float1(f, vm.arg(0), name) })
	}
	f1("sqrt", math.Sqrt)
	f1("sin", math.Sin)
	f1("cos", math.Cos)
	f1("tan", math.Tan)
	f1("exp", math.Exp)
	f1("log", math.Log)
	def("atan", 1, true, 20, func(vm *Machine, n int) Word {
		if n == 2 {
			return vm.flonum(math.Atan2(vm.toFloat(vm.arg(0), "atan"), vm.toFloat(vm.arg(1), "atan")))
		}
		return vm.float1(math.Atan, vm.arg(0), "atan")
	})
	def("expt", 2, false, 25, func(vm *Machine, n int) Word {
		a, b := vm.arg(0), vm.arg(1)
		if scheme.IsFixnum(a) && scheme.IsFixnum(b) && scheme.FixnumValue(b) >= 0 {
			base, e := scheme.FixnumValue(a), scheme.FixnumValue(b)
			acc := int64(1)
			for i := int64(0); i < e; i++ {
				p := acc * base
				if base != 0 && p/base != acc {
					vm.errf("expt: fixnum overflow")
				}
				acc = p
			}
			return vm.checkFixRange(acc, "expt")
		}
		return vm.flonum(math.Pow(vm.toFloat(a, "expt"), vm.toFloat(b, "expt")))
	})
	fround := func(name string, f func(float64) float64) {
		def(name, 1, false, 5, func(vm *Machine, n int) Word {
			w := vm.arg(0)
			if scheme.IsFixnum(w) {
				return w
			}
			return vm.flonum(f(vm.toFloat(w, name)))
		})
	}
	fround("floor", math.Floor)
	fround("ceiling", math.Ceil)
	fround("truncate", math.Trunc)
	fround("round", math.RoundToEven)
	def("exact->inexact", 1, false, 4, func(vm *Machine, n int) Word { return vm.exactToInexact(vm.arg(0)) })
	def("inexact->exact", 1, false, 4, func(vm *Machine, n int) Word { return vm.inexactToExact(vm.arg(0)) })
	def("exact?", 1, false, 2, func(vm *Machine, n int) Word { return scheme.FromBool(scheme.IsFixnum(vm.arg(0))) })
	def("inexact?", 1, false, 2, func(vm *Machine, n int) Word { return scheme.FromBool(vm.isFlonum(vm.arg(0))) })
	def("number->string", 1, false, 40, func(vm *Machine, n int) Word {
		w := vm.arg(0)
		if !vm.isNumber(w) {
			vm.errf("number->string: expected a number")
		}
		return vm.newString(vm.numToString(w))
	})
	def("string->number", 1, false, 40, func(vm *Machine, n int) Word {
		s := vm.goString(vm.arg(0), "string->number")
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return vm.checkFixRange(v, "string->number")
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return vm.flonum(f)
		}
		return scheme.False
	})
	def("bitwise-and", 2, false, 3, func(vm *Machine, n int) Word {
		return scheme.FromFixnum(vm.fixnumArg(vm.arg(0), "bitwise-and") & vm.fixnumArg(vm.arg(1), "bitwise-and"))
	})
	def("bitwise-or", 2, false, 3, func(vm *Machine, n int) Word {
		return scheme.FromFixnum(vm.fixnumArg(vm.arg(0), "bitwise-or") | vm.fixnumArg(vm.arg(1), "bitwise-or"))
	})
	def("bitwise-xor", 2, false, 3, func(vm *Machine, n int) Word {
		return scheme.FromFixnum(vm.fixnumArg(vm.arg(0), "bitwise-xor") ^ vm.fixnumArg(vm.arg(1), "bitwise-xor"))
	})
	def("arithmetic-shift", 2, false, 3, func(vm *Machine, n int) Word {
		v := vm.fixnumArg(vm.arg(0), "arithmetic-shift")
		s := vm.fixnumArg(vm.arg(1), "arithmetic-shift")
		if s >= 0 {
			return vm.checkFixRange(v<<uint(s%61), "arithmetic-shift")
		}
		return scheme.FromFixnum(v >> uint(-s%61))
	})
}

func defPredicates() {
	def("eq?", 2, false, 3, func(vm *Machine, n int) Word { return scheme.FromBool(vm.arg(0) == vm.arg(1)) })
	def("eqv?", 2, false, 4, func(vm *Machine, n int) Word { return scheme.FromBool(vm.eqv(vm.arg(0), vm.arg(1))) })
	def("equal?", 2, false, 8, func(vm *Machine, n int) Word { return scheme.FromBool(vm.equal(vm.arg(0), vm.arg(1))) })
	def("not", 1, false, 2, func(vm *Machine, n int) Word { return scheme.FromBool(vm.arg(0) == scheme.False) })
	def("boolean?", 1, false, 2, func(vm *Machine, n int) Word {
		w := vm.arg(0)
		return scheme.FromBool(w == scheme.True || w == scheme.False)
	})
	def("symbol?", 1, false, 3, func(vm *Machine, n int) Word { return scheme.FromBool(vm.isKind(vm.arg(0), scheme.KindSymbol)) })
	def("string?", 1, false, 3, func(vm *Machine, n int) Word { return scheme.FromBool(vm.isKind(vm.arg(0), scheme.KindString)) })
	def("char?", 1, false, 2, func(vm *Machine, n int) Word { return scheme.FromBool(scheme.IsChar(vm.arg(0))) })
	def("vector?", 1, false, 3, func(vm *Machine, n int) Word { return scheme.FromBool(vm.isKind(vm.arg(0), scheme.KindVector)) })
	def("pair?", 1, false, 3, func(vm *Machine, n int) Word { return scheme.FromBool(vm.isKind(vm.arg(0), scheme.KindPair)) })
	def("null?", 1, false, 2, func(vm *Machine, n int) Word { return scheme.FromBool(vm.arg(0) == scheme.Nil) })
	def("procedure?", 1, false, 3, func(vm *Machine, n int) Word { return scheme.FromBool(vm.isKind(vm.arg(0), scheme.KindClosure)) })
	def("zero?", 1, false, 3, func(vm *Machine, n int) Word {
		return scheme.FromBool(vm.isNumber(vm.arg(0)) && vm.numCompare(vm.arg(0), scheme.FromFixnum(0), "zero?") == 0)
	})
	def("eof-object?", 1, false, 2, func(vm *Machine, n int) Word { return scheme.FromBool(vm.arg(0) == scheme.EOF) })
}

func defLists() {
	def("cons", 2, false, 8, func(vm *Machine, n int) Word { return vm.cons(vm.arg(0), vm.arg(1)) })
	def("car", 1, false, 3, func(vm *Machine, n int) Word { return vm.car(vm.arg(0)) })
	def("cdr", 1, false, 3, func(vm *Machine, n int) Word { return vm.cdr(vm.arg(0)) })
	def("set-car!", 2, false, 4, func(vm *Machine, n int) Word {
		vm.storeSlot(vm.checkKind(vm.arg(0), scheme.KindPair, "set-car!")+1, vm.arg(1))
		return scheme.Unspec
	})
	def("set-cdr!", 2, false, 4, func(vm *Machine, n int) Word {
		vm.storeSlot(vm.checkKind(vm.arg(0), scheme.KindPair, "set-cdr!")+2, vm.arg(1))
		return scheme.Unspec
	})
	def("caar", 1, false, 6, func(vm *Machine, n int) Word { return vm.car(vm.car(vm.arg(0))) })
	def("cadr", 1, false, 6, func(vm *Machine, n int) Word { return vm.car(vm.cdr(vm.arg(0))) })
	def("cdar", 1, false, 6, func(vm *Machine, n int) Word { return vm.cdr(vm.car(vm.arg(0))) })
	def("cddr", 1, false, 6, func(vm *Machine, n int) Word { return vm.cdr(vm.cdr(vm.arg(0))) })
	def("caddr", 1, false, 9, func(vm *Machine, n int) Word { return vm.car(vm.cdr(vm.cdr(vm.arg(0)))) })
	def("cdddr", 1, false, 9, func(vm *Machine, n int) Word { return vm.cdr(vm.cdr(vm.cdr(vm.arg(0)))) })
	def("cadddr", 1, false, 12, func(vm *Machine, n int) Word { return vm.car(vm.cdr(vm.cdr(vm.cdr(vm.arg(0))))) })
	def("list", 0, true, 4, func(vm *Machine, n int) Word {
		out := scheme.Nil
		for i := n - 1; i >= 0; i-- {
			out = vm.cons(vm.arg(i), out)
		}
		vm.charge(uint64(4 * n))
		return out
	})
	def("length", 1, false, 4, func(vm *Machine, n int) Word {
		count := int64(0)
		for w := vm.arg(0); w != scheme.Nil; count++ {
			w = vm.cdr(w)
			vm.charge(3)
		}
		return scheme.FromFixnum(count)
	})
	def("append", 0, true, 6, func(vm *Machine, n int) Word {
		if n == 0 {
			return scheme.Nil
		}
		out := vm.arg(n - 1)
		for i := n - 2; i >= 0; i-- {
			var items []Word
			for w := vm.arg(i); w != scheme.Nil; w = vm.cdr(w) {
				items = append(items, vm.car(w))
			}
			for j := len(items) - 1; j >= 0; j-- {
				out = vm.cons(items[j], out)
			}
			vm.charge(uint64(10 * len(items)))
		}
		return out
	})
	def("reverse", 1, false, 5, func(vm *Machine, n int) Word {
		out := scheme.Nil
		for w := vm.arg(0); w != scheme.Nil; w = vm.cdr(w) {
			out = vm.cons(vm.car(w), out)
			vm.charge(8)
		}
		return out
	})
	def("list-tail", 2, false, 4, func(vm *Machine, n int) Word {
		w := vm.arg(0)
		for k := vm.fixnumArg(vm.arg(1), "list-tail"); k > 0; k-- {
			w = vm.cdr(w)
			vm.charge(3)
		}
		return w
	})
	def("list-ref", 2, false, 4, func(vm *Machine, n int) Word {
		w := vm.arg(0)
		for k := vm.fixnumArg(vm.arg(1), "list-ref"); k > 0; k-- {
			w = vm.cdr(w)
			vm.charge(3)
		}
		return vm.car(w)
	})
	def("list?", 1, false, 4, func(vm *Machine, n int) Word {
		w := vm.arg(0)
		for vm.isKind(w, scheme.KindPair) {
			w = vm.cdr(w)
			vm.charge(3)
		}
		return scheme.FromBool(w == scheme.Nil)
	})
	member := func(name string, eq func(vm *Machine, a, b Word) bool) {
		def(name, 2, false, 4, func(vm *Machine, n int) Word {
			x := vm.arg(0)
			for w := vm.arg(1); w != scheme.Nil; w = vm.cdr(w) {
				vm.charge(5)
				if eq(vm, x, vm.car(w)) {
					return w
				}
			}
			return scheme.False
		})
	}
	member("memq", func(vm *Machine, a, b Word) bool { return a == b })
	member("memv", func(vm *Machine, a, b Word) bool { return vm.eqv(a, b) })
	member("member", func(vm *Machine, a, b Word) bool { return vm.equal(a, b) })
	assoc := func(name string, eq func(vm *Machine, a, b Word) bool) {
		def(name, 2, false, 5, func(vm *Machine, n int) Word {
			x := vm.arg(0)
			for w := vm.arg(1); w != scheme.Nil; w = vm.cdr(w) {
				vm.charge(7)
				entry := vm.car(w)
				if vm.isKind(entry, scheme.KindPair) && eq(vm, x, vm.car(entry)) {
					return entry
				}
			}
			return scheme.False
		})
	}
	assoc("assq", func(vm *Machine, a, b Word) bool { return a == b })
	assoc("assv", func(vm *Machine, a, b Word) bool { return vm.eqv(a, b) })
	assoc("assoc", func(vm *Machine, a, b Word) bool { return vm.equal(a, b) })
}

func defVectors() {
	def("make-vector", 1, true, 10, func(vm *Machine, n int) Word {
		size := int(vm.fixnumArg(vm.arg(0), "make-vector"))
		if size < 0 {
			vm.errf("make-vector: negative size")
		}
		fill := Word(scheme.Unspec)
		if n == 2 {
			fill = vm.arg(1)
		}
		vm.charge(uint64(2 * size))
		return vm.makeVector(size, fill)
	})
	def("vector", 0, true, 8, func(vm *Machine, n int) Word {
		v := vm.makeVector(n, scheme.Unspec)
		addr := scheme.PtrAddr(v)
		for i := 0; i < n; i++ {
			vm.Mem.Store(addr+1+uint64(i), vm.arg(i))
		}
		vm.charge(uint64(3 * n))
		return v
	})
	def("vector-ref", 2, false, 5, func(vm *Machine, n int) Word {
		return vm.vectorRef(vm.arg(0), vm.fixArg(vm.arg(1), "vector-ref"), "vector-ref")
	})
	def("vector-set!", 3, false, 5, func(vm *Machine, n int) Word {
		vm.vectorSet(vm.arg(0), vm.fixArg(vm.arg(1), "vector-set!"), vm.arg(2), "vector-set!")
		return scheme.Unspec
	})
	def("vector-length", 1, false, 3, func(vm *Machine, n int) Word {
		return scheme.FromFixnum(int64(vm.vectorLen(vm.arg(0))))
	})
	def("vector-fill!", 2, false, 4, func(vm *Machine, n int) Word {
		v := vm.arg(0)
		size := vm.vectorLen(v)
		addr := scheme.PtrAddr(v)
		for i := 0; i < size; i++ {
			vm.storeSlot(addr+1+uint64(i), vm.arg(1))
		}
		vm.charge(uint64(2 * size))
		return scheme.Unspec
	})
	def("vector->list", 1, false, 6, func(vm *Machine, n int) Word {
		v := vm.arg(0)
		size := vm.vectorLen(v)
		out := scheme.Nil
		for i := size - 1; i >= 0; i-- {
			out = vm.cons(vm.vectorRef(v, i, "vector->list"), out)
		}
		vm.charge(uint64(10 * size))
		return out
	})
	def("list->vector", 1, false, 6, func(vm *Machine, n int) Word {
		var items []Word
		for w := vm.arg(0); w != scheme.Nil; w = vm.cdr(w) {
			items = append(items, vm.car(w))
		}
		v := vm.makeVector(len(items), scheme.Unspec)
		addr := scheme.PtrAddr(v)
		for i, w := range items {
			vm.Mem.Store(addr+1+uint64(i), w)
		}
		vm.charge(uint64(8 * len(items)))
		return v
	})
}

func defStrings() {
	def("string-length", 1, false, 3, func(vm *Machine, n int) Word {
		return scheme.FromFixnum(int64(vm.stringLen(vm.arg(0), "string-length")))
	})
	def("string-ref", 2, false, 5, func(vm *Machine, n int) Word {
		i := vm.fixArg(vm.arg(1), "string-ref")
		return scheme.FromChar(rune(vm.stringByte(vm.arg(0), i, "string-ref")))
	})
	def("string-append", 0, true, 12, func(vm *Machine, n int) Word {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString(vm.goString(vm.arg(i), "string-append"))
		}
		vm.charge(uint64(2 * b.Len()))
		return vm.newString(b.String())
	})
	def("substring", 3, false, 10, func(vm *Machine, n int) Word {
		s := vm.goString(vm.arg(0), "substring")
		from := vm.fixArg(vm.arg(1), "substring")
		to := vm.fixArg(vm.arg(2), "substring")
		if from < 0 || to > len(s) || from > to {
			vm.errf("substring: bad range [%d,%d) for length %d", from, to, len(s))
		}
		return vm.newString(s[from:to])
	})
	def("string=?", 2, false, 8, func(vm *Machine, n int) Word {
		return scheme.FromBool(vm.goString(vm.arg(0), "string=?") == vm.goString(vm.arg(1), "string=?"))
	})
	def("string<?", 2, false, 8, func(vm *Machine, n int) Word {
		return scheme.FromBool(vm.goString(vm.arg(0), "string<?") < vm.goString(vm.arg(1), "string<?"))
	})
	def("string->symbol", 1, false, 30, func(vm *Machine, n int) Word {
		return vm.Intern(vm.goString(vm.arg(0), "string->symbol"))
	})
	def("symbol->string", 1, false, 6, func(vm *Machine, n int) Word {
		addr := vm.checkKind(vm.arg(0), scheme.KindSymbol, "symbol->string")
		return vm.Mem.Load(addr + 1)
	})
	def("string->list", 1, false, 8, func(vm *Machine, n int) Word {
		s := vm.goString(vm.arg(0), "string->list")
		out := scheme.Nil
		for i := len(s) - 1; i >= 0; i-- {
			out = vm.cons(scheme.FromChar(rune(s[i])), out)
		}
		vm.charge(uint64(8 * len(s)))
		return out
	})
	def("list->string", 1, false, 8, func(vm *Machine, n int) Word {
		var b strings.Builder
		for w := vm.arg(0); w != scheme.Nil; w = vm.cdr(w) {
			ch := vm.car(w)
			if !scheme.IsChar(ch) {
				vm.errf("list->string: expected a character")
			}
			b.WriteRune(scheme.CharValue(ch))
		}
		return vm.newString(b.String())
	})
	def("string-copy", 1, false, 8, func(vm *Machine, n int) Word {
		return vm.newString(vm.goString(vm.arg(0), "string-copy"))
	})
}

func defChars() {
	def("char->integer", 1, false, 2, func(vm *Machine, n int) Word {
		if !scheme.IsChar(vm.arg(0)) {
			vm.errf("char->integer: expected a character")
		}
		return scheme.FromFixnum(int64(scheme.CharValue(vm.arg(0))))
	})
	def("integer->char", 1, false, 2, func(vm *Machine, n int) Word {
		return scheme.FromChar(rune(vm.fixnumArg(vm.arg(0), "integer->char")))
	})
	charCmp := func(name string, ok func(a, b rune) bool) {
		def(name, 2, false, 3, func(vm *Machine, n int) Word {
			a, b := vm.arg(0), vm.arg(1)
			if !scheme.IsChar(a) || !scheme.IsChar(b) {
				vm.errf("%s: expected characters", name)
			}
			return scheme.FromBool(ok(scheme.CharValue(a), scheme.CharValue(b)))
		})
	}
	charCmp("char=?", func(a, b rune) bool { return a == b })
	charCmp("char<?", func(a, b rune) bool { return a < b })
	def("char-alphabetic?", 1, false, 3, func(vm *Machine, n int) Word {
		c := scheme.CharValue(vm.arg(0))
		return scheme.FromBool(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z')
	})
	def("char-numeric?", 1, false, 3, func(vm *Machine, n int) Word {
		c := scheme.CharValue(vm.arg(0))
		return scheme.FromBool(c >= '0' && c <= '9')
	})
	def("char-whitespace?", 1, false, 3, func(vm *Machine, n int) Word {
		c := scheme.CharValue(vm.arg(0))
		return scheme.FromBool(c == ' ' || c == '\t' || c == '\n' || c == '\r')
	})
	def("char-upcase", 1, false, 3, func(vm *Machine, n int) Word {
		c := scheme.CharValue(vm.arg(0))
		if c >= 'a' && c <= 'z' {
			c -= 32
		}
		return scheme.FromChar(c)
	})
	def("char-downcase", 1, false, 3, func(vm *Machine, n int) Word {
		c := scheme.CharValue(vm.arg(0))
		if c >= 'A' && c <= 'Z' {
			c += 32
		}
		return scheme.FromChar(c)
	})
}

func defIO() {
	def("display", 1, false, 30, func(vm *Machine, n int) Word {
		vm.out.WriteString(vm.WriteValue(vm.arg(0), true))
		return scheme.Unspec
	})
	def("write", 1, false, 30, func(vm *Machine, n int) Word {
		vm.out.WriteString(vm.WriteValue(vm.arg(0), false))
		return scheme.Unspec
	})
	def("newline", 0, false, 5, func(vm *Machine, n int) Word {
		vm.out.WriteByte('\n')
		return scheme.Unspec
	})
	def("error", 1, true, 10, func(vm *Machine, n int) Word {
		var b strings.Builder
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteByte(' ')
			}
			w := vm.arg(i)
			if vm.isKind(w, scheme.KindString) {
				b.WriteString(vm.peekString(scheme.PtrAddr(w)))
			} else {
				b.WriteString(vm.DescribeValue(w))
			}
		}
		panic(&Error{Msg: b.String()})
	})
}

func defMisc() {
	// gensym returns an uninterned symbol allocated in the dynamic heap,
	// as in the T system: it is eq? only to itself, it is collectable
	// when dropped, and it never grows the static area or the intern
	// table. An optional string argument sets the name prefix.
	def("gensym", 0, true, 30, func(vm *Machine, n int) Word {
		vm.gensymCount++
		prefix := "%g"
		if n == 1 {
			prefix = vm.goString(vm.arg(0), "gensym")
		}
		name := vm.newString(prefix + strconv.FormatInt(vm.gensymCount, 10))
		h := int64(hashString(prefix)+uint64(vm.gensymCount)) & (1<<60 - 1)
		addr := vm.alloc(scheme.KindSymbol, 2)
		vm.Mem.Store(addr+1, name)
		vm.Mem.Store(addr+2, scheme.FromFixnum(h))
		return scheme.FromPtr(addr)
	})
	def("random", 1, false, 10, func(vm *Machine, n int) Word {
		limit := vm.fixnumArg(vm.arg(0), "random")
		if limit <= 0 {
			vm.errf("random: expected a positive bound")
		}
		vm.rngState = vm.rngState*6364136223846793005 + 1442695040888963407
		return scheme.FromFixnum(int64((vm.rngState >> 33) % uint64(limit)))
	})
	def("random-seed!", 1, false, 4, func(vm *Machine, n int) Word {
		vm.rngState = uint64(vm.fixnumArg(vm.arg(0), "random-seed!"))*2862933555777941757 + 1
		return scheme.Unspec
	})
	def("void", 0, true, 1, func(vm *Machine, n int) Word { return scheme.Unspec })
	def("runtime-collections", 0, false, 3, func(vm *Machine, n int) Word {
		return scheme.FromFixnum(int64(vm.Col.Stats().Collections))
	})
}
