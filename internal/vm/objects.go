package vm

import (
	"fmt"
	"math"
	"strings"

	"gcsim/internal/scheme"
)

// This file contains the runtime object layer: constructors and accessors
// for every heap object kind, the materialization of host-side data into
// simulated memory, and the value printer. Accessors perform their type
// checks host-side (no simulated references) and their data accesses
// through the traced memory.

// cons allocates a pair.
func (vm *Machine) cons(car, cdr Word) Word {
	addr := vm.alloc(scheme.KindPair, 2)
	vm.Mem.Store(addr+1, car)
	vm.Mem.Store(addr+2, cdr)
	return scheme.FromPtr(addr)
}

func (vm *Machine) car(p Word) Word { return vm.Mem.Load(vm.checkKind(p, scheme.KindPair, "car") + 1) }
func (vm *Machine) cdr(p Word) Word { return vm.Mem.Load(vm.checkKind(p, scheme.KindPair, "cdr") + 2) }

// list builds a list from values, last to first.
func (vm *Machine) list(items ...Word) Word {
	out := scheme.Nil
	for i := len(items) - 1; i >= 0; i-- {
		out = vm.cons(items[i], out)
	}
	return out
}

// makeVector allocates a vector of n elements, each initialized to fill.
func (vm *Machine) makeVector(n int, fill Word) Word {
	addr := vm.alloc(scheme.KindVector, n)
	for i := 0; i < n; i++ {
		vm.Mem.Store(addr+1+uint64(i), fill)
	}
	return scheme.FromPtr(addr)
}

// vectorLen returns the length of a vector without touching memory (the
// length lives in the header, modeled as part of the pointer/tag word).
func (vm *Machine) vectorLen(v Word) int {
	addr := vm.checkKind(v, scheme.KindVector, "vector-length")
	return scheme.HeaderSize(vm.Mem.Peek(addr))
}

func (vm *Machine) vectorRef(v Word, i int, who string) Word {
	addr := vm.checkKind(v, scheme.KindVector, who)
	n := scheme.HeaderSize(vm.Mem.Peek(addr))
	if i < 0 || i >= n {
		vm.errf("%s: index %d out of range [0,%d)", who, i, n)
	}
	return vm.Mem.Load(addr + 1 + uint64(i))
}

func (vm *Machine) vectorSet(v Word, i int, w Word, who string) {
	addr := vm.checkKind(v, scheme.KindVector, who)
	n := scheme.HeaderSize(vm.Mem.Peek(addr))
	if i < 0 || i >= n {
		vm.errf("%s: index %d out of range [0,%d)", who, i, n)
	}
	vm.storeSlot(addr+1+uint64(i), w)
}

// newString allocates a dynamic string object.
func (vm *Machine) newString(s string) Word {
	payload := stringPayload(s)
	addr := vm.alloc(scheme.KindString, len(payload))
	for i, w := range payload {
		vm.Mem.Store(addr+1+uint64(i), w)
	}
	return scheme.FromPtr(addr)
}

// stringLen returns a string's byte length (one traced load of the length
// word).
func (vm *Machine) stringLen(s Word, who string) int {
	addr := vm.checkKind(s, scheme.KindString, who)
	return int(scheme.FixnumValue(vm.Mem.Load(addr + 1)))
}

// stringByte loads one byte of a string (one traced word load).
func (vm *Machine) stringByte(s Word, i int, who string) byte {
	addr := vm.checkKind(s, scheme.KindString, who)
	n := int(scheme.FixnumValue(vm.Mem.Load(addr + 1)))
	if i < 0 || i >= n {
		vm.errf("%s: index %d out of range [0,%d)", who, i, n)
	}
	w := vm.Mem.Load(addr + 2 + uint64(i/8))
	return byte(w >> (8 * (i % 8)))
}

// goString extracts a whole Scheme string, loading each payload word once.
func (vm *Machine) goString(s Word, who string) string {
	addr := vm.checkKind(s, scheme.KindString, who)
	n := int(scheme.FixnumValue(vm.Mem.Load(addr + 1)))
	var b strings.Builder
	b.Grow(n)
	for wi := 0; wi < (n+7)/8; wi++ {
		w := vm.Mem.Load(addr + 2 + uint64(wi))
		for bi := 0; bi < 8 && wi*8+bi < n; bi++ {
			b.WriteByte(byte(w >> (8 * bi)))
		}
	}
	return b.String()
}

// flonumValue unboxes a flonum.
func (vm *Machine) flonumValue(w Word) float64 {
	addr := vm.checkKind(w, scheme.KindFlonum, "flonum")
	return math.Float64frombits(uint64(vm.Mem.Load(addr + 1)))
}

// isFlonum reports whether w is a boxed float.
func (vm *Machine) isFlonum(w Word) bool { return vm.isKind(w, scheme.KindFlonum) }

// newCell allocates a mutable box.
func (vm *Machine) newCell(w Word) Word {
	addr := vm.alloc(scheme.KindCell, 1)
	vm.Mem.Store(addr+1, w)
	return scheme.FromPtr(addr)
}

// makeClosure allocates a closure over code index ci capturing free.
func (vm *Machine) makeClosure(ci int, free []Word) Word {
	addr := vm.alloc(scheme.KindClosure, 1+len(free))
	vm.Mem.Store(addr+1, scheme.FromFixnum(int64(ci)))
	for i, w := range free {
		vm.Mem.Store(addr+2+uint64(i), w)
	}
	return scheme.FromPtr(addr)
}

// closureCode returns the code object of a closure.
func (vm *Machine) closureCode(w Word) *Code {
	addr := vm.checkKind(w, scheme.KindClosure, "call")
	ci := scheme.FixnumValue(vm.Mem.Load(addr + 1))
	return vm.codes[ci]
}

// Materialize converts a host-side datum into a static simulated-memory
// value; it is how quoted constants enter the program image. Interned
// symbols are shared; everything else is fresh.
func (vm *Machine) Materialize(d scheme.Datum) Word {
	switch x := d.(type) {
	case nil:
		return scheme.Unspec
	case int64:
		return scheme.FromFixnum(x)
	case float64:
		addr := vm.allocStaticObject(scheme.KindFlonum, []Word{Word(math.Float64bits(x))})
		return scheme.FromPtr(addr)
	case bool:
		return scheme.FromBool(x)
	case scheme.Char:
		return scheme.FromChar(rune(x))
	case scheme.Sym:
		return vm.Intern(string(x))
	case string:
		return vm.staticString(x)
	case *scheme.Pair:
		car := vm.Materialize(x.Car)
		cdr := vm.Materialize(x.Cdr)
		return scheme.FromPtr(vm.allocStaticObject(scheme.KindPair, []Word{car, cdr}))
	case scheme.Vec:
		elems := make([]Word, len(x))
		for i, e := range x {
			elems[i] = vm.Materialize(e)
		}
		return scheme.FromPtr(vm.allocStaticObject(scheme.KindVector, elems))
	default:
		if scheme.IsEmpty(d) {
			return scheme.Nil
		}
		if d == scheme.Unspecified {
			return scheme.Unspec
		}
		panic(fmt.Sprintf("vm: cannot materialize %T", d))
	}
}

// eqv implements eqv?: identity, plus numeric equality for same-type
// numbers and character equality.
func (vm *Machine) eqv(a, b Word) bool {
	if a == b {
		return true
	}
	if vm.isFlonum(a) && vm.isFlonum(b) {
		return vm.flonumValue(a) == vm.flonumValue(b)
	}
	return false
}

// equal implements equal?: structural equality with traced traversal.
func (vm *Machine) equal(a, b Word) bool {
	if vm.eqv(a, b) {
		return true
	}
	ka, oka := vm.kindOf(a)
	kb, okb := vm.kindOf(b)
	if !oka || !okb || ka != kb {
		return false
	}
	switch ka {
	case scheme.KindPair:
		return vm.equal(vm.car(a), vm.car(b)) && vm.equal(vm.cdr(a), vm.cdr(b))
	case scheme.KindVector:
		na, nb := vm.vectorLen(a), vm.vectorLen(b)
		if na != nb {
			return false
		}
		for i := 0; i < na; i++ {
			if !vm.equal(vm.vectorRef(a, i, "equal?"), vm.vectorRef(b, i, "equal?")) {
				return false
			}
		}
		return true
	case scheme.KindString:
		return vm.goString(a, "equal?") == vm.goString(b, "equal?")
	default:
		return false
	}
}

// WriteValue renders a runtime value in external syntax using traced loads
// (printing is program activity). DescribeValue below is the untraced
// variant for error messages.
func (vm *Machine) WriteValue(w Word, display bool) string {
	var b strings.Builder
	vm.writeValue(&b, w, display, 0, vm.Mem.Load)
	return b.String()
}

// DescribeValue renders a value without generating simulated references,
// for diagnostics.
func (vm *Machine) DescribeValue(w Word) string {
	var b strings.Builder
	vm.writeValue(&b, w, false, 0, vm.Mem.Peek)
	return b.String()
}

const printDepthLimit = 64

func (vm *Machine) writeValue(b *strings.Builder, w Word, display bool, depth int, load func(uint64) Word) {
	if depth > printDepthLimit {
		b.WriteString("...")
		return
	}
	switch {
	case scheme.IsFixnum(w):
		fmt.Fprintf(b, "%d", scheme.FixnumValue(w))
	case scheme.IsChar(w):
		if display {
			b.WriteRune(scheme.CharValue(w))
		} else {
			b.WriteString(scheme.WriteDatum(scheme.Char(scheme.CharValue(w))))
		}
	case w == scheme.True:
		b.WriteString("#t")
	case w == scheme.False:
		b.WriteString("#f")
	case w == scheme.Nil:
		b.WriteString("()")
	case w == scheme.Unspec:
		b.WriteString("#!unspecific")
	case w == scheme.EOF:
		b.WriteString("#!eof")
	case w == scheme.Undef:
		b.WriteString("#!unbound")
	case scheme.IsPtr(w):
		vm.writeObject(b, w, display, depth, load)
	default:
		fmt.Fprintf(b, "#<word %#x>", uint64(w))
	}
}

func (vm *Machine) writeObject(b *strings.Builder, w Word, display bool, depth int, load func(uint64) Word) {
	addr := scheme.PtrAddr(w)
	h := vm.Mem.Peek(addr)
	if !scheme.IsHeader(h) {
		fmt.Fprintf(b, "#<bad-pointer %#x>", addr)
		return
	}
	switch scheme.HeaderKind(h) {
	case scheme.KindPair:
		b.WriteByte('(')
		vm.writeValue(b, load(addr+1), display, depth+1, load)
		rest := load(addr + 2)
		for n := 0; ; n++ {
			if n > 1<<16 {
				b.WriteString(" ...")
				break
			}
			if rest == scheme.Nil {
				break
			}
			if k, ok := vm.kindOf(rest); !ok || k != scheme.KindPair {
				b.WriteString(" . ")
				vm.writeValue(b, rest, display, depth+1, load)
				break
			}
			ra := scheme.PtrAddr(rest)
			b.WriteByte(' ')
			vm.writeValue(b, load(ra+1), display, depth+1, load)
			rest = load(ra + 2)
		}
		b.WriteByte(')')
	case scheme.KindVector:
		b.WriteString("#(")
		n := scheme.HeaderSize(h)
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteByte(' ')
			}
			vm.writeValue(b, load(addr+1+uint64(i)), display, depth+1, load)
		}
		b.WriteByte(')')
	case scheme.KindString:
		s := vm.peekString(addr)
		if display {
			b.WriteString(s)
		} else {
			b.WriteString(scheme.QuoteString(s))
		}
	case scheme.KindSymbol:
		if name, ok := vm.symbolNames[addr]; ok {
			b.WriteString(name)
		} else if s := vm.Mem.Peek(addr + 1); scheme.IsPtr(s) {
			// An uninterned (gensym) symbol: its name lives in its
			// first payload slot.
			b.WriteString(vm.peekString(scheme.PtrAddr(s)))
		} else {
			fmt.Fprintf(b, "#<symbol %#x>", addr)
		}
	case scheme.KindClosure:
		ci := scheme.FixnumValue(vm.Mem.Peek(addr + 1))
		name := vm.codes[ci].Name
		if name == "" {
			name = "anonymous"
		}
		fmt.Fprintf(b, "#<procedure %s>", name)
	case scheme.KindFlonum:
		f := math.Float64frombits(uint64(vm.Mem.Peek(addr + 1)))
		b.WriteString(scheme.WriteDatum(f))
	case scheme.KindCell:
		b.WriteString("#<cell ")
		vm.writeValue(b, vm.Mem.Peek(addr+1), display, depth+1, load)
		b.WriteByte('>')
	case scheme.KindTable:
		fmt.Fprintf(b, "#<table %d>", scheme.FixnumValue(vm.Mem.Peek(addr+2)))
	default:
		fmt.Fprintf(b, "#<%s %#x>", scheme.HeaderKind(h), addr)
	}
}

// peekString reads a string object without tracing (for the printer's
// symbol/diagnostic paths).
func (vm *Machine) peekString(addr uint64) string {
	n := int(scheme.FixnumValue(vm.Mem.Peek(addr + 1)))
	var b strings.Builder
	b.Grow(n)
	for wi := 0; wi < (n+7)/8; wi++ {
		w := vm.Mem.Peek(addr + 2 + uint64(wi))
		for bi := 0; bi < 8 && wi*8+bi < n; bi++ {
			b.WriteByte(byte(w >> (8 * bi)))
		}
	}
	return b.String()
}
