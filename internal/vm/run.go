package vm

import (
	"fmt"

	"gcsim/internal/mem"
	"gcsim/internal/scheme"
)

// This file is the bytecode interpreter. Calling convention:
//
//	... [savedClos savedCode savedPC savedBase] fun arg0 ... argN-1 locals...
//	     ^frame pushed by OpFrame                    ^base
//
// OpFrame pushes the four-word return frame; the operator and arguments are
// then pushed; OpCall dispatches with base = address of arg0 (fun sits at
// base-1, the frame at base-5..base-2). OpReturn pops everything above and
// including the frame. Tail calls shift the new operator and arguments down
// over the current frame's slots and reuse its return frame.
//
// Collections happen only at safepoints — OpCall and OpTailCall entry —
// when the machine's complete root set is the accumulator, the
// current-closure register, and the stack.

// Sentinel run-termination errors. They surface unchanged (pointer
// identity preserved) through RunCode and Eval, and remain matchable with
// errors.Is even after callers wrap them with %w.
var (
	// ErrFuelExhausted is returned when a run exceeds Machine.MaxInsns.
	ErrFuelExhausted = &Error{Msg: "instruction budget exhausted"}
	// ErrStackOverflow is returned when a push exceeds the stack region.
	ErrStackOverflow = &Error{Msg: "stack overflow"}
	// ErrInterrupted is returned when Machine.Interrupt stops a run at a
	// call safepoint (cancellation, deadline, or signal).
	ErrInterrupted = &Error{Msg: "run interrupted"}
)

// haltSentinel marks the bottom frame's saved-code slot.
const haltSentinel = -1

// RunCode executes a compiled top-level thunk and returns its value.
func (vm *Machine) RunCode(code *Code) (result Word, err error) {
	defer func() {
		// Deliver any references staged in the batch pipeline, so tracer
		// state is complete whenever control returns to the caller (on
		// error paths too).
		vm.Mem.FlushTrace()
		r := recover()
		if r == nil {
			return
		}
		if se, ok := r.(*Error); ok {
			result, err = scheme.Unspec, se
			return
		}
		panic(r)
	}()
	sp0, base0 := vm.sp, vm.base
	thunk := vm.makeClosure(code.idx, nil)
	vm.push(thunk)
	vm.base = vm.sp
	vm.clos = thunk
	if code.packed == nil {
		code.finalize(!vm.NoFuse)
	}
	result = vm.execute(code)
	vm.sp, vm.base = sp0, base0
	return result, nil
}

// arg reads builtin argument i from the stack (traced).
func (vm *Machine) arg(i int) Word { return vm.Mem.LoadStack(vm.base + uint64(i)) }

// checkFuel panics with ErrFuelExhausted once the instruction budget is
// spent. The interpreter calls it only at safepoints (calls, applies) and
// on taken backward jumps — not per instruction — so a run can overshoot
// MaxInsns by at most one basic block before it stops.
func (vm *Machine) checkFuel() {
	if vm.MaxInsns != 0 && vm.insns > vm.MaxInsns {
		panic(ErrFuelExhausted)
	}
}

// fusedJF finishes a compare+jump-false superinstruction: it deposits the
// comparison result in the accumulator, charges the branch component, and
// returns the next pc (the branch target on #f, or the slot after the
// consumed jump-false otherwise).
func (vm *Machine) fusedJF(v Word, target int32, pc int) int {
	vm.acc = v
	vm.insns += costs[OpJumpFalse]
	if v == scheme.False {
		t := int(target)
		if t < pc {
			vm.checkFuel()
		}
		return t
	}
	return pc + 1
}

// execute runs the packed instruction stream. The loop is the simulator's
// innermost hot path: one 64-bit load fetches opcode and operands, fuel
// and interrupt checks live at safepoints rather than per instruction, and
// stack traffic goes through the Memory's stack fast path. Superinstruction
// handlers interleave their two components' cost charges and references
// exactly as the unfused pair would, so traces and instruction clocks are
// independent of fusion.
func (vm *Machine) execute(code *Code) Word {
	ins := code.packed
	pc := 0
	m := vm.Mem

	for {
		in := ins[pc]
		pc++
		op := Op(in & opMask)
		a := packedA(in)
		vm.insns += in >> costShift // base cost rides in the word's top byte

		switch op {
		case OpConst:
			vm.acc = code.Consts[a]
		case OpLocal:
			vm.acc = m.LoadStack(vm.base + uint64(a))
		case OpSetLocal:
			m.StoreStack(vm.base+uint64(a), vm.acc)
		case OpFree:
			vm.acc = m.Load(scheme.PtrAddr(vm.clos) + 2 + uint64(a))
		case OpGlobal:
			w := m.Load(code.Cells[a] + 1)
			if w == scheme.Undef {
				vm.errf("unbound variable: %s", code.Globals[a])
			}
			vm.acc = w
		case OpSetGlobal:
			vm.storeSlot(code.Cells[a]+1, vm.acc)
		case OpPush:
			vm.push(vm.acc)
		case OpPopN:
			vm.sp -= uint64(a)
		case OpBox:
			vm.acc = vm.newCell(vm.acc)
		case OpBoxRef:
			vm.acc = m.Load(scheme.PtrAddr(vm.acc) + 1)
		case OpBoxSet:
			vm.sp--
			cell := m.LoadStack(vm.sp)
			vm.storeSlot(scheme.PtrAddr(cell)+1, vm.acc)
			vm.acc = scheme.Unspec
		case OpClosure:
			n := int(packedB(in))
			vm.charge(uint64(n)) // capture copies
			free := make([]Word, n)
			for i := 0; i < n; i++ {
				free[i] = m.LoadStack(vm.sp - uint64(n) + uint64(i))
			}
			vm.sp -= uint64(n)
			vm.acc = vm.makeClosure(int(a), free)
		case OpFrame:
			// Four-wide frame push: one staging fast path instead of four
			// push calls. The fallback reproduces push's per-word overflow
			// behavior exactly (partial pushes, then ErrStackOverflow).
			if vm.sp+4 <= mem.StackLimit {
				m.StoreStack4(vm.sp, vm.clos,
					scheme.FromFixnum(int64(code.idx)),
					scheme.FromFixnum(int64(a)),
					scheme.FromFixnum(int64(vm.base)))
				vm.sp += 4
			} else {
				vm.push(vm.clos)
				vm.push(scheme.FromFixnum(int64(code.idx)))
				vm.push(scheme.FromFixnum(int64(a)))
				vm.push(scheme.FromFixnum(int64(vm.base)))
			}
		case OpCall:
			vm.checkFuel()
			if vm.interrupt.Load() {
				panic(ErrInterrupted)
			}
			if vm.Col.NeedsCollect() {
				vm.collect()
			}
			n := int(a)
			funSlot := vm.sp - uint64(n) - 1
			fun := m.LoadStack(funSlot)
			code = vm.enter(fun, n, funSlot+1)
			ins = code.packed
			pc = 0
		case OpTailCall:
			vm.checkFuel()
			if vm.interrupt.Load() {
				panic(ErrInterrupted)
			}
			if vm.Col.NeedsCollect() {
				vm.collect()
			}
			n := int(a)
			src := vm.sp - uint64(n) - 1
			dst := vm.base - 1
			var fun Word
			if src == dst {
				fun = m.LoadStack(dst)
			} else {
				vm.charge(uint64(2 * (n + 1)))
				for i := 0; i <= n; i++ {
					w := m.LoadStack(src + uint64(i))
					if i == 0 {
						fun = w
					}
					m.StoreStack(dst+uint64(i), w)
				}
			}
			vm.sp = vm.base + uint64(n)
			code = vm.enter(fun, n, vm.base)
			ins = code.packed
			pc = 0
		case OpReturn:
			savedClos := m.LoadStack(vm.base - 5)
			savedCode := scheme.FixnumValue(m.LoadStack(vm.base - 4))
			savedPC := scheme.FixnumValue(m.LoadStack(vm.base - 3))
			savedBase := scheme.FixnumValue(m.LoadStack(vm.base - 2))
			vm.sp = vm.base - 5
			if savedCode == haltSentinel {
				return vm.acc
			}
			vm.clos = savedClos
			vm.base = uint64(savedBase)
			code = vm.codes[savedCode]
			ins = code.packed
			pc = int(savedPC)
		case OpJump:
			t := int(a)
			if t < pc {
				vm.checkFuel()
			}
			pc = t
		case OpJumpFalse:
			if vm.acc == scheme.False {
				t := int(a)
				if t < pc {
					vm.checkFuel()
				}
				pc = t
			}
		case OpHalt:
			return vm.acc
		case OpPrim:
			f := &builtins[a]
			n := int(vm.sp - vm.base)
			if n < f.MinArgs || (!f.Variadic && n != f.MinArgs) {
				vm.errf("%s: expected %d arguments, got %d", f.Name, f.MinArgs, n)
			}
			vm.charge(f.Cost)
			vm.acc = f.Fn(vm, n)
		case OpApply:
			vm.checkFuel()
			code = vm.applySpecial()
			ins = code.packed
			pc = 0

		case OpCons:
			vm.sp--
			vm.acc = vm.cons(m.LoadStack(vm.sp), vm.acc)
		case OpCar:
			vm.acc = vm.car(vm.acc)
		case OpCdr:
			vm.acc = vm.cdr(vm.acc)
		case OpSetCar:
			vm.sp--
			p := m.LoadStack(vm.sp)
			vm.storeSlot(vm.checkKind(p, scheme.KindPair, "set-car!")+1, vm.acc)
			vm.acc = scheme.Unspec
		case OpSetCdr:
			vm.sp--
			p := m.LoadStack(vm.sp)
			vm.storeSlot(vm.checkKind(p, scheme.KindPair, "set-cdr!")+2, vm.acc)
			vm.acc = scheme.Unspec
		case OpAdd:
			vm.sp--
			vm.acc = vm.numAdd(m.LoadStack(vm.sp), vm.acc)
		case OpSub:
			vm.sp--
			vm.acc = vm.numSub(m.LoadStack(vm.sp), vm.acc)
		case OpMul:
			vm.sp--
			vm.acc = vm.numMul(m.LoadStack(vm.sp), vm.acc)
		case OpNumEq:
			vm.sp--
			vm.acc = scheme.FromBool(vm.numCompare(m.LoadStack(vm.sp), vm.acc, "=") == 0)
		case OpLess:
			vm.sp--
			vm.acc = scheme.FromBool(vm.numCompare(m.LoadStack(vm.sp), vm.acc, "<") < 0)
		case OpLessEq:
			vm.sp--
			vm.acc = scheme.FromBool(vm.numCompare(m.LoadStack(vm.sp), vm.acc, "<=") <= 0)
		case OpGreater:
			vm.sp--
			vm.acc = scheme.FromBool(vm.numCompare(m.LoadStack(vm.sp), vm.acc, ">") > 0)
		case OpGreaterEq:
			vm.sp--
			vm.acc = scheme.FromBool(vm.numCompare(m.LoadStack(vm.sp), vm.acc, ">=") >= 0)
		case OpEq:
			vm.sp--
			vm.acc = scheme.FromBool(m.LoadStack(vm.sp) == vm.acc)
		case OpNullP:
			vm.acc = scheme.FromBool(vm.acc == scheme.Nil)
		case OpPairP:
			vm.acc = scheme.FromBool(vm.isKind(vm.acc, scheme.KindPair))
		case OpNot:
			vm.acc = scheme.FromBool(vm.acc == scheme.False)
		case OpZeroP:
			vm.acc = scheme.FromBool(vm.numCompare(vm.acc, scheme.FromFixnum(0), "zero?") == 0)
		case OpVecRef:
			vm.sp--
			v := m.LoadStack(vm.sp)
			vm.acc = vm.vectorRef(v, vm.fixArg(vm.acc, "vector-ref"), "vector-ref")
		case OpVecSet:
			vm.sp -= 2
			v := m.LoadStack(vm.sp)
			i := vm.fixArg(m.LoadStack(vm.sp+1), "vector-set!")
			vm.vectorSet(v, i, vm.acc, "vector-set!")
			vm.acc = scheme.Unspec

		case OpLocalPush:
			vm.acc = m.LoadStack(vm.base + uint64(a))
			vm.insns += costs[OpPush]
			vm.push(vm.acc)
			pc++
		case OpConstPush:
			vm.acc = code.Consts[a]
			vm.insns += costs[OpPush]
			vm.push(vm.acc)
			pc++
		case OpGlobalPush:
			w := m.Load(code.Cells[a] + 1)
			if w == scheme.Undef {
				vm.errf("unbound variable: %s", code.Globals[a])
			}
			vm.acc = w
			vm.insns += costs[OpPush]
			vm.push(w)
			pc++
		case OpFreePush:
			vm.acc = m.Load(scheme.PtrAddr(vm.clos) + 2 + uint64(a))
			vm.insns += costs[OpPush]
			vm.push(vm.acc)
			pc++
		case OpPushLocal:
			vm.push(vm.acc)
			vm.insns += costs[OpLocal]
			vm.acc = m.LoadStack(vm.base + uint64(a))
			pc++
		case OpPushCall:
			vm.push(vm.acc)
			vm.insns += costs[OpCall]
			vm.checkFuel()
			if vm.interrupt.Load() {
				panic(ErrInterrupted)
			}
			if vm.Col.NeedsCollect() {
				vm.collect()
			}
			n := int(a)
			funSlot := vm.sp - uint64(n) - 1
			fun := m.LoadStack(funSlot)
			code = vm.enter(fun, n, funSlot+1)
			ins = code.packed
			pc = 0
		case OpPushTailCall:
			vm.push(vm.acc)
			vm.insns += costs[OpTailCall]
			vm.checkFuel()
			if vm.interrupt.Load() {
				panic(ErrInterrupted)
			}
			if vm.Col.NeedsCollect() {
				vm.collect()
			}
			n := int(a)
			src := vm.sp - uint64(n) - 1
			dst := vm.base - 1
			var fun Word
			if src == dst {
				fun = m.LoadStack(dst)
			} else {
				vm.charge(uint64(2 * (n + 1)))
				for i := 0; i <= n; i++ {
					w := m.LoadStack(src + uint64(i))
					if i == 0 {
						fun = w
					}
					m.StoreStack(dst+uint64(i), w)
				}
			}
			vm.sp = vm.base + uint64(n)
			code = vm.enter(fun, n, vm.base)
			ins = code.packed
			pc = 0
		case OpNumEqJF:
			vm.sp--
			pc = vm.fusedJF(scheme.FromBool(vm.numCompare(m.LoadStack(vm.sp), vm.acc, "=") == 0), a, pc)
		case OpLessJF:
			vm.sp--
			pc = vm.fusedJF(scheme.FromBool(vm.numCompare(m.LoadStack(vm.sp), vm.acc, "<") < 0), a, pc)
		case OpLessEqJF:
			vm.sp--
			pc = vm.fusedJF(scheme.FromBool(vm.numCompare(m.LoadStack(vm.sp), vm.acc, "<=") <= 0), a, pc)
		case OpGreaterJF:
			vm.sp--
			pc = vm.fusedJF(scheme.FromBool(vm.numCompare(m.LoadStack(vm.sp), vm.acc, ">") > 0), a, pc)
		case OpGreaterEqJF:
			vm.sp--
			pc = vm.fusedJF(scheme.FromBool(vm.numCompare(m.LoadStack(vm.sp), vm.acc, ">=") >= 0), a, pc)
		case OpEqJF:
			vm.sp--
			pc = vm.fusedJF(scheme.FromBool(m.LoadStack(vm.sp) == vm.acc), a, pc)
		case OpNullPJF:
			pc = vm.fusedJF(scheme.FromBool(vm.acc == scheme.Nil), a, pc)
		case OpPairPJF:
			pc = vm.fusedJF(scheme.FromBool(vm.isKind(vm.acc, scheme.KindPair)), a, pc)
		case OpNotJF:
			pc = vm.fusedJF(scheme.FromBool(vm.acc == scheme.False), a, pc)
		case OpZeroPJF:
			pc = vm.fusedJF(scheme.FromBool(vm.numCompare(vm.acc, scheme.FromFixnum(0), "zero?") == 0), a, pc)
		default:
			vm.errf("internal error: bad opcode %v", op)
		}
	}
}

// enter dispatches a call to fun with n arguments already placed at
// [newBase, newBase+n); it returns the code to execute.
func (vm *Machine) enter(fun Word, n int, newBase uint64) *Code {
	code := vm.closureCode(fun)
	if code.packed == nil {
		code.finalize(!vm.NoFuse)
	}
	if code.Prim < 0 {
		switch {
		case code.Rest:
			if n < code.NArgs {
				vm.errf("%s: expected at least %d arguments, got %d",
					codeName(code), code.NArgs, n)
			}
			rest := scheme.Nil
			for i := n - 1; i >= code.NArgs; i-- {
				rest = vm.cons(vm.Mem.LoadStack(newBase+uint64(i)), rest)
			}
			vm.sp = newBase + uint64(code.NArgs)
			vm.push(rest)
		case n != code.NArgs:
			vm.errf("%s: expected %d arguments, got %d", codeName(code), code.NArgs, n)
		}
	}
	vm.clos = fun
	vm.base = newBase
	return code
}

func codeName(c *Code) string {
	if c.Name == "" {
		return "#<procedure>"
	}
	return c.Name
}

// applySpecial implements (apply f a b ... lst): it reuses the apply
// frame, shifting the middle arguments down and spreading the final list,
// then tail-calls f.
func (vm *Machine) applySpecial() *Code {
	m := vm.Mem
	k := int(vm.sp - vm.base)
	if k < 2 {
		vm.errf("apply: expected at least 2 arguments, got %d", k)
	}
	fun := m.LoadStack(vm.base)
	lstw := m.LoadStack(vm.base + uint64(k) - 1)
	m.StoreStack(vm.base-1, fun)
	n := 0
	for i := 1; i < k-1; i++ {
		m.StoreStack(vm.base+uint64(n), m.LoadStack(vm.base+uint64(i)))
		n++
	}
	for lstw != scheme.Nil {
		if !vm.isKind(lstw, scheme.KindPair) {
			vm.errf("apply: final argument is not a proper list")
		}
		a := scheme.PtrAddr(lstw)
		m.StoreStack(vm.base+uint64(n), m.Load(a+1))
		n++
		lstw = m.Load(a + 2)
		vm.charge(3)
	}
	vm.sp = vm.base + uint64(n)
	return vm.enter(fun, n, vm.base)
}

// fixArg extracts a fixnum or raises a type error.
func (vm *Machine) fixArg(w Word, who string) int {
	if !scheme.IsFixnum(w) {
		vm.errf("%s: expected an integer, got %s", who, vm.DescribeValue(w))
	}
	return int(scheme.FixnumValue(w))
}

// Eval compiles and runs every top-level form in src, returning the value
// of the last one.
func (vm *Machine) Eval(src string) (Word, error) {
	forms, err := scheme.ReadAll(src)
	if err != nil {
		return scheme.Unspec, err
	}
	c := &compiler{vm: vm, redefined: map[string]bool{}}
	for _, f := range forms {
		c.noteRedefinitions(f)
	}
	result := Word(scheme.Unspec)
	for _, f := range forms {
		code, err := c.compileToplevel(c1Expand(c, f))
		if err != nil {
			return scheme.Unspec, err
		}
		result, err = vm.RunCode(code)
		if err != nil {
			return scheme.Unspec, err
		}
	}
	return result, nil
}

// c1Expand is the identity: compileToplevel expands internally; this hook
// exists so Eval reads naturally and tests can interpose.
func c1Expand(c *compiler, d scheme.Datum) scheme.Datum { return d }

// MustEval is Eval for tests and examples where failure is fatal.
func (vm *Machine) MustEval(src string) Word {
	w, err := vm.Eval(src)
	if err != nil {
		panic(fmt.Sprintf("MustEval: %v", err))
	}
	return w
}
