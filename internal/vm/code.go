// Package vm implements the Scheme system that generates the paper's
// reference traces: a compiler from Scheme source to bytecode, and a
// bytecode interpreter whose every data access — stack, heap, and static —
// goes through the simulated memory and is therefore traced.
//
// The machine is an accumulator machine: expression results land in the
// accumulator, arguments and frames are pushed on a contiguous stack in
// simulated memory, and closures, pairs, vectors, and all other data
// structures live in the dynamic area managed by a gc.Collector.
//
// Instruction counting uses a per-opcode cost table (see costs) that
// approximates the number of MIPS-class machine instructions each bytecode
// expands to, keeping the refs-per-instruction ratio of traces in the range
// the paper reports (~0.27). Type checks are modeled as tag checks that
// touch no memory (as in the T system, where type bits live in the pointer),
// so they cost instructions but generate no references.
package vm

import (
	"fmt"
	"strings"
)

// Op is a bytecode opcode.
type Op uint8

// The instruction set.
const (
	OpConst     Op = iota // acc = Consts[A]
	OpLocal               // acc = stack[base+A]
	OpSetLocal            // stack[base+A] = acc
	OpFree                // acc = closure.free[A]
	OpGlobal              // acc = cell(Cells[A]); error if unbound
	OpSetGlobal           // cell(Cells[A]) = acc
	OpPush                // push acc
	OpPopN                // sp -= A (leaves acc)
	OpBox                 // acc = new cell holding acc
	OpBoxRef              // acc = contents of cell acc
	OpBoxSet              // cell popped-from-stack contents = acc
	OpClosure             // acc = closure(Codes[A], B free values popped)
	OpFrame               // push return frame; A = return pc
	OpCall                // call with A args
	OpTailCall            // tail call with A args
	OpReturn              // return acc to saved frame
	OpJump                // pc = A
	OpJumpFalse           // if acc is #f, pc = A
	OpHalt                // stop the machine (top-level thunk end)
	OpPrim                // invoke builtin A (inside builtin closures)
	OpApply               // the apply special (inside the apply closure)

	// Inlined primitives. Binary operations take the left operand from
	// the top of stack (popped) and the right operand from acc.
	OpCons
	OpCar
	OpCdr
	OpSetCar // pair popped, value in acc
	OpSetCdr
	OpAdd
	OpSub
	OpMul
	OpNumEq
	OpLess
	OpLessEq
	OpGreater
	OpGreaterEq
	OpEq     // eq?
	OpNullP  // null?
	OpPairP  // pair?
	OpNot    // not
	OpZeroP  // zero?
	OpVecRef // vector popped, index in acc
	OpVecSet // vector and index popped, value in acc

	// Superinstructions. These never appear in Code.Instrs — the compiler
	// emits only the primitive opcodes above — but the packer substitutes
	// them for hot adjacent pairs when it finalizes a Code (see fusePair).
	// Each one performs exactly the work of its two components, charging
	// each component's cost at the point the unfused sequence would, so
	// instruction totals and the instruction clock observed at every data
	// reference are bit-identical with fusion on or off.
	OpLocalPush    // local A; push
	OpConstPush    // const A; push
	OpGlobalPush   // global A; push
	OpFreePush     // free A; push
	OpPushLocal    // push; local A
	OpPushCall     // push; call A
	OpPushTailCall // push; tail-call A
	OpNumEqJF      // num=; jump-false A
	OpLessJF       // lt; jump-false A
	OpLessEqJF     // le; jump-false A
	OpGreaterJF    // gt; jump-false A
	OpGreaterEqJF  // ge; jump-false A
	OpEqJF         // eq?; jump-false A
	OpNullPJF      // null?; jump-false A
	OpPairPJF      // pair?; jump-false A
	OpNotJF        // not; jump-false A
	OpZeroPJF      // zero?; jump-false A
	opCount
)

var opNames = [...]string{
	OpConst: "const", OpLocal: "local", OpSetLocal: "set-local",
	OpFree: "free", OpGlobal: "global", OpSetGlobal: "set-global",
	OpPush: "push", OpPopN: "popn", OpBox: "box", OpBoxRef: "box-ref",
	OpBoxSet: "box-set", OpClosure: "closure", OpFrame: "frame",
	OpCall: "call", OpTailCall: "tail-call", OpReturn: "return",
	OpJump: "jump", OpJumpFalse: "jump-false", OpHalt: "halt",
	OpPrim: "prim", OpApply: "apply",
	OpCons: "cons", OpCar: "car", OpCdr: "cdr", OpSetCar: "set-car!",
	OpSetCdr: "set-cdr!", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpNumEq: "num=", OpLess: "lt", OpLessEq: "le", OpGreater: "gt",
	OpGreaterEq: "ge", OpEq: "eq?", OpNullP: "null?", OpPairP: "pair?",
	OpNot: "not", OpZeroP: "zero?", OpVecRef: "vector-ref",
	OpVecSet:    "vector-set!",
	OpLocalPush: "local+push", OpConstPush: "const+push",
	OpGlobalPush: "global+push", OpFreePush: "free+push",
	OpPushLocal: "push+local", OpPushCall: "push+call",
	OpPushTailCall: "push+tail-call",
	OpNumEqJF:      "num=+jf", OpLessJF: "lt+jf", OpLessEqJF: "le+jf",
	OpGreaterJF: "gt+jf", OpGreaterEqJF: "ge+jf", OpEqJF: "eq?+jf",
	OpNullPJF: "null?+jf", OpPairPJF: "pair?+jf", OpNotJF: "not+jf",
	OpZeroPJF: "zero?+jf",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// costs approximates the MIPS-class instruction expansion of each opcode.
// Dynamic components (per-word frame traffic, argument shifting, builtin
// work) are charged separately by the interpreter.
// The table is calibrated so whole-workload traces land near the paper's
// ~0.27 data references per instruction (Section 3's ratio for orbit and
// friends); see BenchmarkAblationCostModel, which pins the ratio.
var costs = [opCount]uint64{
	OpConst: 2, OpLocal: 3, OpSetLocal: 3, OpFree: 4, OpGlobal: 4,
	OpSetGlobal: 4, OpPush: 3, OpPopN: 1, OpBox: 7, OpBoxRef: 3,
	OpBoxSet: 6, OpClosure: 12, OpFrame: 8, OpCall: 14, OpTailCall: 12,
	OpReturn: 8, OpJump: 1, OpJumpFalse: 3, OpHalt: 1, OpPrim: 6,
	OpApply: 14,
	OpCons:  11, OpCar: 4, OpCdr: 4, OpSetCar: 5, OpSetCdr: 5,
	OpAdd: 5, OpSub: 5, OpMul: 8, OpNumEq: 5, OpLess: 5, OpLessEq: 5,
	OpGreater: 5, OpGreaterEq: 5, OpEq: 4, OpNullP: 3, OpPairP: 4,
	OpNot: 3, OpZeroP: 4, OpVecRef: 7, OpVecSet: 7,

	// A superinstruction's table entry is its FIRST component's cost; the
	// interpreter charges the second component inside the handler at the
	// point the unfused sequence would have charged it (between the two
	// components' data references), keeping the instruction clock exact.
	OpLocalPush: 3, OpConstPush: 2, OpGlobalPush: 4, OpFreePush: 4,
	OpPushLocal: 3, OpPushCall: 3, OpPushTailCall: 3,
	OpNumEqJF: 5, OpLessJF: 5, OpLessEqJF: 5, OpGreaterJF: 5,
	OpGreaterEqJF: 5, OpEqJF: 4, OpNullPJF: 3, OpPairPJF: 4,
	OpNotJF: 3, OpZeroPJF: 4,
}

// Instr is one bytecode instruction with up to two immediate operands.
type Instr struct {
	Op   Op
	A, B int32
}

func (i Instr) String() string {
	switch i.Op {
	case OpClosure:
		return fmt.Sprintf("%s code=%d nfree=%d", i.Op, i.A, i.B)
	case OpConst, OpLocal, OpSetLocal, OpFree, OpGlobal, OpSetGlobal,
		OpPopN, OpFrame, OpCall, OpTailCall, OpJump, OpJumpFalse, OpPrim:
		return fmt.Sprintf("%s %d", i.Op, i.A)
	default:
		return i.Op.String()
	}
}

// Code is one compiled procedure body. Code objects are host-side: the
// paper simulates only the data cache, so instruction fetch produces no
// simulated references, but constants and globals the code touches live in
// simulated (static) memory.
type Code struct {
	Name    string // procedure name for diagnostics, "" if anonymous
	NArgs   int    // required argument count
	Rest    bool   // accepts additional arguments as a rest list
	NFree   int    // free variables captured in the closure
	Instrs  []Instr
	Consts  []Word   // literal constants (immediates or static pointers)
	Cells   []uint64 // static addresses of the global cells this code uses
	Globals []string // names parallel to Cells, for diagnostics

	// Prim is the builtin index for primitive stubs, or -1 for ordinary
	// procedures; primitive stubs receive their arguments raw, without
	// arity adjustment.
	Prim int

	idx int // position in the machine's code table

	// packed is the instruction stream the interpreter actually executes:
	// one 64-bit word per Instr (same indices, so jump targets transfer
	// unchanged), with hot adjacent pairs rewritten into superinstructions.
	// Built lazily on first entry; nil until then.
	packed []uint64
}

// Disassemble renders the code for debugging and tests.
func (c *Code) Disassemble() string {
	var b strings.Builder
	name := c.Name
	if name == "" {
		name = "<anon>"
	}
	fmt.Fprintf(&b, "%s (args=%d rest=%v free=%d)\n", name, c.NArgs, c.Rest, c.NFree)
	for pc, in := range c.Instrs {
		fmt.Fprintf(&b, "%4d  %s", pc, in)
		if in.Op == OpGlobal || in.Op == OpSetGlobal {
			fmt.Fprintf(&b, "  ; %s", c.Globals[in.A])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CodeShapeVersion identifies the interpreter's executable code shape: the
// packed instruction word layout, the superinstruction set, and the cost
// table — everything that could alter the reference stream or instruction
// clock a recorded trace embeds. It is part of the trace cache key
// preimage: bump it whenever any of those change, even "neutrally", so
// stale cached traces are re-recorded instead of silently replayed against
// a different interpreter. Version 1 was the pre-packing struct walker
// (which recorded identical streams, but predates this constant).
const CodeShapeVersion = 2

// Packed instruction word layout. The interpreter never reads Instr structs
// in its hot loop: finalize folds each instruction into one 64-bit word —
// opcode in the low byte, the A operand as a 32-bit two's-complement field,
// the small B operand (closure free count) in the next 16 bits, and the
// instruction's base cycle cost in the top byte — so one aligned load
// fetches a whole instruction, qlang-style, instead of three struct field
// loads plus a cost-table lookup.
const (
	bitsOp     = 8
	bitsA      = 32
	bitsB      = 16
	opMask     = 1<<bitsOp - 1
	packedBMax = 1 << bitsB
	costShift  = bitsOp + bitsA + bitsB
)

// packInstr folds an opcode, its operands, and its base cost into one
// instruction word. For superinstructions the packed cost is the FIRST
// component's cost (costs[op] already holds it); the handler charges the
// second component mid-stream, at the point the unfused pair would have,
// so the instruction clock observed at every chunk seal is bit-identical
// to unfused execution.
func packInstr(op Op, a, b int32) uint64 {
	return uint64(op) | uint64(uint32(a))<<bitsOp |
		uint64(uint32(b))<<(bitsOp+bitsA) | costs[op]<<(bitsOp+bitsA+bitsB)
}

// packedA recovers the sign-extended A operand.
func packedA(w uint64) int32 { return int32(uint32(w >> bitsOp)) }

// packedB recovers the B operand.
func packedB(w uint64) int32 { return int32(w >> (bitsOp + bitsA) & (packedBMax - 1)) }

// finalize builds the packed instruction stream, fusing hot adjacent pairs
// into superinstructions when fuse is set. The packed stream is index-
// compatible with Instrs: a fused pair occupies the first slot and the
// handler skips the second, whose word is kept verbatim but never executed
// (it is provably not a jump target — see the target scan). Callers
// finalize each Code at most once, on first entry.
func (c *Code) finalize(fuse bool) {
	n := len(c.Instrs)
	packed := make([]uint64, n)
	for i, in := range c.Instrs {
		if in.Op == OpClosure && (in.B < 0 || int64(in.B) >= packedBMax) {
			panic(fmt.Sprintf("vm: closure free count %d overflows packed instruction word", in.B))
		}
		packed[i] = packInstr(in.Op, in.A, in.B)
	}
	if fuse && n >= 2 {
		// A slot may be fused away only if control never enters it
		// directly: collect every pc that a jump or a return can target.
		target := make([]bool, n)
		for _, in := range c.Instrs {
			switch in.Op {
			case OpJump, OpJumpFalse, OpFrame:
				if t := int(in.A); 0 <= t && t < n {
					target[t] = true
				}
			}
		}
		for i := 0; i+1 < n; i++ {
			if target[i+1] {
				continue
			}
			if w, ok := fusePair(c.Instrs[i], c.Instrs[i+1]); ok {
				packed[i] = w
				i++ // second slot consumed; never fuse it again
			}
		}
	}
	c.packed = packed
}

// fusePair returns the superinstruction word for an adjacent opcode pair,
// if one exists. The table covers the pairs the compiler actually emits
// back to back: operand loads feeding an argument push (Local/Const/
// Global/Free + Push), a push followed by a local reload or by the call
// that consumes the argument (Push + Local/Call/TailCall), and every
// inlined comparison feeding a conditional branch (cmp + JumpFalse).
// Frame+Call never fuses in practice: the operator and argument pushes
// always sit between OpFrame and its OpCall, so that slot of the design
// space is covered by Push+Call instead.
func fusePair(a, b Instr) (uint64, bool) {
	switch {
	case b.Op == OpPush:
		switch a.Op {
		case OpLocal:
			return packInstr(OpLocalPush, a.A, 0), true
		case OpConst:
			return packInstr(OpConstPush, a.A, 0), true
		case OpGlobal:
			return packInstr(OpGlobalPush, a.A, 0), true
		case OpFree:
			return packInstr(OpFreePush, a.A, 0), true
		}
	case a.Op == OpPush:
		switch b.Op {
		case OpLocal:
			return packInstr(OpPushLocal, b.A, 0), true
		case OpCall:
			return packInstr(OpPushCall, b.A, 0), true
		case OpTailCall:
			return packInstr(OpPushTailCall, b.A, 0), true
		}
	case b.Op == OpJumpFalse:
		var op Op
		switch a.Op {
		case OpNumEq:
			op = OpNumEqJF
		case OpLess:
			op = OpLessJF
		case OpLessEq:
			op = OpLessEqJF
		case OpGreater:
			op = OpGreaterJF
		case OpGreaterEq:
			op = OpGreaterEqJF
		case OpEq:
			op = OpEqJF
		case OpNullP:
			op = OpNullPJF
		case OpPairP:
			op = OpPairPJF
		case OpNot:
			op = OpNotJF
		case OpZeroP:
			op = OpZeroPJF
		default:
			return 0, false
		}
		return packInstr(op, b.A, 0), true
	}
	return 0, false
}

// DisassemblePacked renders the packed (post-fusion) stream for debugging
// and fusion tests; slots consumed by a superinstruction are marked.
func (c *Code) DisassemblePacked() string {
	var b strings.Builder
	skip := false
	for pc, w := range c.packed {
		op := Op(w & opMask)
		if skip {
			fmt.Fprintf(&b, "%4d  (fused into %d)\n", pc, pc-1)
			skip = false
			continue
		}
		fmt.Fprintf(&b, "%4d  %s %d\n", pc, op, packedA(w))
		skip = op > OpVecSet
	}
	return b.String()
}
