// Package vm implements the Scheme system that generates the paper's
// reference traces: a compiler from Scheme source to bytecode, and a
// bytecode interpreter whose every data access — stack, heap, and static —
// goes through the simulated memory and is therefore traced.
//
// The machine is an accumulator machine: expression results land in the
// accumulator, arguments and frames are pushed on a contiguous stack in
// simulated memory, and closures, pairs, vectors, and all other data
// structures live in the dynamic area managed by a gc.Collector.
//
// Instruction counting uses a per-opcode cost table (see costs) that
// approximates the number of MIPS-class machine instructions each bytecode
// expands to, keeping the refs-per-instruction ratio of traces in the range
// the paper reports (~0.27). Type checks are modeled as tag checks that
// touch no memory (as in the T system, where type bits live in the pointer),
// so they cost instructions but generate no references.
package vm

import (
	"fmt"
	"strings"
)

// Op is a bytecode opcode.
type Op uint8

// The instruction set.
const (
	OpConst     Op = iota // acc = Consts[A]
	OpLocal               // acc = stack[base+A]
	OpSetLocal            // stack[base+A] = acc
	OpFree                // acc = closure.free[A]
	OpGlobal              // acc = cell(Cells[A]); error if unbound
	OpSetGlobal           // cell(Cells[A]) = acc
	OpPush                // push acc
	OpPopN                // sp -= A (leaves acc)
	OpBox                 // acc = new cell holding acc
	OpBoxRef              // acc = contents of cell acc
	OpBoxSet              // cell popped-from-stack contents = acc
	OpClosure             // acc = closure(Codes[A], B free values popped)
	OpFrame               // push return frame; A = return pc
	OpCall                // call with A args
	OpTailCall            // tail call with A args
	OpReturn              // return acc to saved frame
	OpJump                // pc = A
	OpJumpFalse           // if acc is #f, pc = A
	OpHalt                // stop the machine (top-level thunk end)
	OpPrim                // invoke builtin A (inside builtin closures)
	OpApply               // the apply special (inside the apply closure)

	// Inlined primitives. Binary operations take the left operand from
	// the top of stack (popped) and the right operand from acc.
	OpCons
	OpCar
	OpCdr
	OpSetCar // pair popped, value in acc
	OpSetCdr
	OpAdd
	OpSub
	OpMul
	OpNumEq
	OpLess
	OpLessEq
	OpGreater
	OpGreaterEq
	OpEq     // eq?
	OpNullP  // null?
	OpPairP  // pair?
	OpNot    // not
	OpZeroP  // zero?
	OpVecRef // vector popped, index in acc
	OpVecSet // vector and index popped, value in acc
	opCount
)

var opNames = [...]string{
	OpConst: "const", OpLocal: "local", OpSetLocal: "set-local",
	OpFree: "free", OpGlobal: "global", OpSetGlobal: "set-global",
	OpPush: "push", OpPopN: "popn", OpBox: "box", OpBoxRef: "box-ref",
	OpBoxSet: "box-set", OpClosure: "closure", OpFrame: "frame",
	OpCall: "call", OpTailCall: "tail-call", OpReturn: "return",
	OpJump: "jump", OpJumpFalse: "jump-false", OpHalt: "halt",
	OpPrim: "prim", OpApply: "apply",
	OpCons: "cons", OpCar: "car", OpCdr: "cdr", OpSetCar: "set-car!",
	OpSetCdr: "set-cdr!", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpNumEq: "num=", OpLess: "lt", OpLessEq: "le", OpGreater: "gt",
	OpGreaterEq: "ge", OpEq: "eq?", OpNullP: "null?", OpPairP: "pair?",
	OpNot: "not", OpZeroP: "zero?", OpVecRef: "vector-ref",
	OpVecSet: "vector-set!",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// costs approximates the MIPS-class instruction expansion of each opcode.
// Dynamic components (per-word frame traffic, argument shifting, builtin
// work) are charged separately by the interpreter.
// The table is calibrated so whole-workload traces land near the paper's
// ~0.27 data references per instruction (Section 3's ratio for orbit and
// friends); see BenchmarkAblationCostModel, which pins the ratio.
var costs = [opCount]uint64{
	OpConst: 2, OpLocal: 3, OpSetLocal: 3, OpFree: 4, OpGlobal: 4,
	OpSetGlobal: 4, OpPush: 3, OpPopN: 1, OpBox: 7, OpBoxRef: 3,
	OpBoxSet: 6, OpClosure: 12, OpFrame: 8, OpCall: 14, OpTailCall: 12,
	OpReturn: 8, OpJump: 1, OpJumpFalse: 3, OpHalt: 1, OpPrim: 6,
	OpApply: 14,
	OpCons:  11, OpCar: 4, OpCdr: 4, OpSetCar: 5, OpSetCdr: 5,
	OpAdd: 5, OpSub: 5, OpMul: 8, OpNumEq: 5, OpLess: 5, OpLessEq: 5,
	OpGreater: 5, OpGreaterEq: 5, OpEq: 4, OpNullP: 3, OpPairP: 4,
	OpNot: 3, OpZeroP: 4, OpVecRef: 7, OpVecSet: 7,
}

// Instr is one bytecode instruction with up to two immediate operands.
type Instr struct {
	Op   Op
	A, B int32
}

func (i Instr) String() string {
	switch i.Op {
	case OpClosure:
		return fmt.Sprintf("%s code=%d nfree=%d", i.Op, i.A, i.B)
	case OpConst, OpLocal, OpSetLocal, OpFree, OpGlobal, OpSetGlobal,
		OpPopN, OpFrame, OpCall, OpTailCall, OpJump, OpJumpFalse, OpPrim:
		return fmt.Sprintf("%s %d", i.Op, i.A)
	default:
		return i.Op.String()
	}
}

// Code is one compiled procedure body. Code objects are host-side: the
// paper simulates only the data cache, so instruction fetch produces no
// simulated references, but constants and globals the code touches live in
// simulated (static) memory.
type Code struct {
	Name    string // procedure name for diagnostics, "" if anonymous
	NArgs   int    // required argument count
	Rest    bool   // accepts additional arguments as a rest list
	NFree   int    // free variables captured in the closure
	Instrs  []Instr
	Consts  []Word   // literal constants (immediates or static pointers)
	Cells   []uint64 // static addresses of the global cells this code uses
	Globals []string // names parallel to Cells, for diagnostics

	// Prim is the builtin index for primitive stubs, or -1 for ordinary
	// procedures; primitive stubs receive their arguments raw, without
	// arity adjustment.
	Prim int

	idx int // position in the machine's code table
}

// Disassemble renders the code for debugging and tests.
func (c *Code) Disassemble() string {
	var b strings.Builder
	name := c.Name
	if name == "" {
		name = "<anon>"
	}
	fmt.Fprintf(&b, "%s (args=%d rest=%v free=%d)\n", name, c.NArgs, c.Rest, c.NFree)
	for pc, in := range c.Instrs {
		fmt.Fprintf(&b, "%4d  %s", pc, in)
		if in.Op == OpGlobal || in.Op == OpSetGlobal {
			fmt.Fprintf(&b, "  ; %s", c.Globals[in.A])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
