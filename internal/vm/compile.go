package vm

import (
	"fmt"

	"gcsim/internal/scheme"
)

// This file is the compiler: a macro expander that reduces the surface
// language to a small core (quote, if, set!, lambda, begin, let, define,
// application), and a code generator that performs lexical addressing,
// flat-closure conversion, and assignment boxing (every set! variable
// lives in a heap cell, so captured copies share state).

// CompileError reports a compilation failure.
type CompileError struct {
	Msg  string
	Form scheme.Datum
}

func (e *CompileError) Error() string {
	if e.Form != nil {
		return fmt.Sprintf("compile: %s: %s", e.Msg, truncateForm(scheme.WriteDatum(e.Form)))
	}
	return "compile: " + e.Msg
}

func truncateForm(s string) string {
	if len(s) > 120 {
		return s[:117] + "..."
	}
	return s
}

type compiler struct {
	vm        *Machine
	redefined map[string]bool // builtin names the program rebinds
}

func compileErrf(form scheme.Datum, format string, args ...any) {
	panic(&CompileError{Msg: fmt.Sprintf(format, args...), Form: form})
}

// cbinding is one stack-resident variable in the frame being compiled.
type cbinding struct {
	name  string
	pos   int // slot index relative to the frame base
	boxed bool
}

// cfree is a variable captured from an enclosing frame. Exactly one of
// parentLocal/parentFree is >= 0.
type cfree struct {
	name        string
	boxed       bool
	parentLocal int
	parentFree  int
}

// cframe is the compile-time model of one procedure activation.
type cframe struct {
	parent   *cframe
	code     *Code
	bindings []cbinding // innermost last
	depth    int        // current stack words above base (slots + temps)
	free     []cfree
}

// ref is the result of name resolution.
type ref struct {
	kind  refKind
	idx   int
	boxed bool
}

type refKind uint8

const (
	refLocal refKind = iota
	refFree
	refGlobal
)

// resolve finds name in frame f, capturing it as a free variable across
// lambda boundaries, or falls back to a global reference.
func (c *compiler) resolve(f *cframe, name string) ref {
	if f == nil {
		return ref{kind: refGlobal}
	}
	for i := len(f.bindings) - 1; i >= 0; i-- {
		if f.bindings[i].name == name {
			return ref{kind: refLocal, idx: f.bindings[i].pos, boxed: f.bindings[i].boxed}
		}
	}
	for i, fr := range f.free {
		if fr.name == name {
			return ref{kind: refFree, idx: i, boxed: fr.boxed}
		}
	}
	// Not in this frame: resolve in the parent and capture.
	pr := c.resolve(f.parent, name)
	switch pr.kind {
	case refGlobal:
		return pr
	case refLocal:
		f.free = append(f.free, cfree{name: name, boxed: pr.boxed, parentLocal: pr.idx, parentFree: -1})
	case refFree:
		f.free = append(f.free, cfree{name: name, boxed: pr.boxed, parentLocal: -1, parentFree: pr.idx})
	}
	return ref{kind: refFree, idx: len(f.free) - 1, boxed: pr.boxed}
}

func (f *cframe) emit(in Instr) int {
	f.code.Instrs = append(f.code.Instrs, in)
	return len(f.code.Instrs) - 1
}

func (f *cframe) constIdx(w Word) int32 {
	for i, c := range f.code.Consts {
		if c == w {
			return int32(i)
		}
	}
	f.code.Consts = append(f.code.Consts, w)
	return int32(len(f.code.Consts) - 1)
}

func (c *compiler) globalIdx(f *cframe, name string) int32 {
	for i, g := range f.code.Globals {
		if g == name {
			return int32(i)
		}
	}
	f.code.Globals = append(f.code.Globals, name)
	f.code.Cells = append(f.code.Cells, c.vm.globalCell(name))
	return int32(len(f.code.Globals) - 1)
}

// CompileToplevel compiles one top-level form into a zero-argument thunk
// ending in OpHalt. The caller runs the thunks in order.
func (vm *Machine) CompileToplevel(d scheme.Datum) (code *Code, err error) {
	c := &compiler{vm: vm, redefined: map[string]bool{}}
	c.noteRedefinitions(d)
	return c.compileToplevel(d)
}

func (c *compiler) compileToplevel(d scheme.Datum) (code *Code, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(*CompileError); ok {
				code, err = nil, ce
				return
			}
			panic(r)
		}
	}()
	f := &cframe{code: &Code{Name: "toplevel"}}
	d = c.expand(d)
	if form, ok := headIs(d, "define"); ok {
		c.compileDefine(f, form)
	} else {
		c.compileExpr(f, d, false)
	}
	f.emit(Instr{Op: OpHalt})
	c.vm.addCode(f.code)
	return f.code, nil
}

// noteRedefinitions records program rebindings of builtin names so the
// code generator stops inlining them.
func (c *compiler) noteRedefinitions(d scheme.Datum) {
	p, ok := d.(*scheme.Pair)
	if !ok {
		return
	}
	if head, ok := p.Car.(scheme.Sym); ok && (head == "define" || head == "set!") {
		switch t := cadr(d).(type) {
		case scheme.Sym:
			c.redefined[string(t)] = true
		case *scheme.Pair:
			if n, ok := t.Car.(scheme.Sym); ok {
				c.redefined[string(n)] = true
			}
		}
	}
	for cur := scheme.Datum(p); ; {
		q, ok := cur.(*scheme.Pair)
		if !ok {
			return
		}
		c.noteRedefinitions(q.Car)
		cur = q.Cdr
	}
}

func (c *compiler) compileDefine(f *cframe, form scheme.Datum) {
	// After expansion a define is always (define name expr).
	items, _ := scheme.ListToSlice(form)
	if len(items) != 3 {
		compileErrf(form, "malformed define")
	}
	name, ok := items[1].(scheme.Sym)
	if !ok {
		compileErrf(form, "define of a non-symbol")
	}
	c.compileExprNamed(f, items[2], false, string(name))
	f.emit(Instr{Op: OpSetGlobal, A: c.globalIdx(f, string(name))})
}

// compileExpr generates code leaving the value of d in the accumulator.
func (c *compiler) compileExpr(f *cframe, d scheme.Datum, tail bool) {
	c.compileExprNamed(f, d, tail, "")
}

func (c *compiler) compileExprNamed(f *cframe, d scheme.Datum, tail bool, nameHint string) {
	switch x := d.(type) {
	case scheme.Sym:
		c.compileVarRef(f, string(x), d)
		return
	case int64:
		if x >= scheme.FixnumMin && x <= scheme.FixnumMax {
			f.emit(Instr{Op: OpConst, A: f.constIdx(scheme.FromFixnum(x))})
			return
		}
		compileErrf(d, "integer literal out of fixnum range")
	case float64, bool, scheme.Char, string, scheme.Vec:
		f.emit(Instr{Op: OpConst, A: f.constIdx(c.vm.Materialize(d))})
		return
	case *scheme.Pair:
		// handled below
	default:
		if scheme.IsEmpty(d) {
			compileErrf(d, "empty application ()")
		}
		compileErrf(d, "cannot compile %T", d)
	}

	head, _ := d.(*scheme.Pair).Car.(scheme.Sym)
	switch head {
	case "quote":
		f.emit(Instr{Op: OpConst, A: f.constIdx(c.vm.Materialize(cadr(d)))})
	case "if":
		c.compileIf(f, d, tail)
	case "set!":
		c.compileSet(f, d)
	case "lambda":
		c.compileLambda(f, d, nameHint)
	case "begin":
		items, ok := scheme.ListToSlice(d)
		if !ok {
			compileErrf(d, "malformed begin")
		}
		c.compileBody(f, items[1:], tail)
	case "let":
		c.compileLet(f, d, tail)
	case "define":
		compileErrf(d, "define is only allowed at top level or at the head of a body")
	default:
		c.compileApp(f, d, tail)
	}
}

func (c *compiler) compileVarRef(f *cframe, name string, form scheme.Datum) {
	r := c.resolve(f, name)
	switch r.kind {
	case refLocal:
		f.emit(Instr{Op: OpLocal, A: int32(r.idx)})
	case refFree:
		f.emit(Instr{Op: OpFree, A: int32(r.idx)})
	case refGlobal:
		f.emit(Instr{Op: OpGlobal, A: c.globalIdx(f, name)})
	}
	if r.boxed {
		f.emit(Instr{Op: OpBoxRef})
	}
}

func (c *compiler) compileIf(f *cframe, d scheme.Datum, tail bool) {
	items, ok := scheme.ListToSlice(d)
	if !ok || len(items) < 3 || len(items) > 4 {
		compileErrf(d, "malformed if")
	}
	c.compileExpr(f, items[1], false)
	jf := f.emit(Instr{Op: OpJumpFalse})
	c.compileExpr(f, items[2], tail)
	jend := f.emit(Instr{Op: OpJump})
	f.code.Instrs[jf].A = int32(len(f.code.Instrs))
	if len(items) == 4 {
		c.compileExpr(f, items[3], tail)
	} else {
		f.emit(Instr{Op: OpConst, A: f.constIdx(scheme.Unspec)})
	}
	f.code.Instrs[jend].A = int32(len(f.code.Instrs))
}

func (c *compiler) compileSet(f *cframe, d scheme.Datum) {
	items, ok := scheme.ListToSlice(d)
	if !ok || len(items) != 3 {
		compileErrf(d, "malformed set!")
	}
	name, ok := items[1].(scheme.Sym)
	if !ok {
		compileErrf(d, "set! of a non-symbol")
	}
	r := c.resolve(f, string(name))
	switch {
	case r.kind == refGlobal:
		c.compileExpr(f, items[2], false)
		f.emit(Instr{Op: OpSetGlobal, A: c.globalIdx(f, string(name))})
	case r.boxed:
		// Push the cell, evaluate the value, store through the cell.
		if r.kind == refLocal {
			f.emit(Instr{Op: OpLocal, A: int32(r.idx)})
		} else {
			f.emit(Instr{Op: OpFree, A: int32(r.idx)})
		}
		f.emit(Instr{Op: OpPush})
		f.depth++
		c.compileExpr(f, items[2], false)
		f.emit(Instr{Op: OpBoxSet})
		f.depth--
	case r.kind == refLocal:
		c.compileExpr(f, items[2], false)
		f.emit(Instr{Op: OpSetLocal, A: int32(r.idx)})
	default:
		// A captured-but-never-boxed variable cannot be assigned; boxing
		// covers every assigned binding, so this indicates a compiler bug.
		compileErrf(d, "internal error: set! of unboxed free variable %s", name)
	}
}

func (c *compiler) compileLambda(f *cframe, d scheme.Datum, nameHint string) {
	p := d.(*scheme.Pair)
	rest, _ := p.Cdr.(*scheme.Pair)
	if rest == nil {
		compileErrf(d, "malformed lambda")
	}
	formals := rest.Car
	body, ok := scheme.ListToSlice(rest.Cdr)
	if !ok || len(body) == 0 {
		compileErrf(d, "lambda with empty body")
	}

	names, hasRest := parseFormals(formals, d)
	g := &cframe{
		parent: f,
		code:   &Code{Name: nameHint, NArgs: len(names), Rest: hasRest, Prim: -1},
	}
	nslots := len(names)
	if hasRest {
		nslots++
	}
	g.depth = nslots
	allNames := names
	if hasRest {
		allNames = append(append([]string{}, names...), restName(formals))
	}
	for i, n := range allNames {
		boxed := assignedIn(n, body)
		g.bindings = append(g.bindings, cbinding{name: n, pos: i, boxed: boxed})
		if boxed {
			g.emit(Instr{Op: OpLocal, A: int32(i)})
			g.emit(Instr{Op: OpBox})
			g.emit(Instr{Op: OpSetLocal, A: int32(i)})
		}
	}
	c.compileBody(g, body, true)
	g.emit(Instr{Op: OpReturn})
	ci := c.vm.addCode(g.code)
	g.code.NFree = len(g.free)

	// Emit capture loads in the enclosing frame, then build the closure.
	for _, fr := range g.free {
		if fr.parentLocal >= 0 {
			f.emit(Instr{Op: OpLocal, A: int32(fr.parentLocal)})
		} else {
			f.emit(Instr{Op: OpFree, A: int32(fr.parentFree)})
		}
		f.emit(Instr{Op: OpPush})
		f.depth++
	}
	f.emit(Instr{Op: OpClosure, A: int32(ci), B: int32(len(g.free))})
	f.depth -= len(g.free)
}

func parseFormals(formals scheme.Datum, form scheme.Datum) (names []string, hasRest bool) {
	for {
		switch x := formals.(type) {
		case scheme.Sym:
			return names, true
		case *scheme.Pair:
			n, ok := x.Car.(scheme.Sym)
			if !ok {
				compileErrf(form, "bad formal parameter")
			}
			names = append(names, string(n))
			formals = x.Cdr
		default:
			if !scheme.IsEmpty(formals) {
				compileErrf(form, "bad formals list")
			}
			return names, false
		}
	}
}

func restName(formals scheme.Datum) string {
	for {
		switch x := formals.(type) {
		case scheme.Sym:
			return string(x)
		case *scheme.Pair:
			formals = x.Cdr
		default:
			panic("vm: restName on proper formals")
		}
	}
}

func (c *compiler) compileLet(f *cframe, d scheme.Datum, tail bool) {
	items, ok := scheme.ListToSlice(d)
	if !ok || len(items) < 3 {
		compileErrf(d, "malformed let")
	}
	binds, ok := scheme.ListToSlice(items[1])
	if !ok {
		compileErrf(d, "malformed let bindings")
	}
	body := items[2:]
	depth0 := f.depth
	nbind0 := len(f.bindings)
	type nb struct {
		name  string
		boxed bool
	}
	var news []nb
	for _, b := range binds {
		bi, ok := scheme.ListToSlice(b)
		if !ok || len(bi) != 2 {
			compileErrf(d, "malformed let binding")
		}
		name, ok := bi[0].(scheme.Sym)
		if !ok {
			compileErrf(d, "let binding of non-symbol")
		}
		boxed := assignedIn(string(name), body)
		c.compileExprNamed(f, bi[1], false, string(name))
		if boxed {
			f.emit(Instr{Op: OpBox})
		}
		f.emit(Instr{Op: OpPush})
		news = append(news, nb{string(name), boxed})
		f.depth++
	}
	// Bindings become visible only after all inits are evaluated.
	for i, n := range news {
		f.bindings = append(f.bindings, cbinding{name: n.name, pos: depth0 + i, boxed: n.boxed})
	}
	c.compileBody(f, body, tail)
	f.bindings = f.bindings[:nbind0]
	if !tail && len(news) > 0 {
		f.emit(Instr{Op: OpPopN, A: int32(len(news))})
	}
	f.depth = depth0
}

func (c *compiler) compileBody(f *cframe, forms []scheme.Datum, tail bool) {
	if len(forms) == 0 {
		f.emit(Instr{Op: OpConst, A: f.constIdx(scheme.Unspec)})
		return
	}
	for i, form := range forms {
		c.compileExpr(f, form, tail && i == len(forms)-1)
	}
}

// inlineOp describes a primitive the code generator can open-code.
type inlineOp struct {
	op    Op
	nargs int
}

var inlineOps = map[string]inlineOp{
	"cons": {OpCons, 2}, "car": {OpCar, 1}, "cdr": {OpCdr, 1},
	"set-car!": {OpSetCar, 2}, "set-cdr!": {OpSetCdr, 2},
	"+": {OpAdd, 2}, "-": {OpSub, 2}, "*": {OpMul, 2},
	"=": {OpNumEq, 2}, "<": {OpLess, 2}, "<=": {OpLessEq, 2},
	">": {OpGreater, 2}, ">=": {OpGreaterEq, 2},
	"eq?": {OpEq, 2}, "null?": {OpNullP, 1}, "pair?": {OpPairP, 1},
	"not": {OpNot, 1}, "zero?": {OpZeroP, 1},
	"vector-ref": {OpVecRef, 2}, "vector-set!": {OpVecSet, 3},
}

func (c *compiler) compileApp(f *cframe, d scheme.Datum, tail bool) {
	items, ok := scheme.ListToSlice(d)
	if !ok || len(items) == 0 {
		compileErrf(d, "malformed application")
	}
	// Open-code hot primitives when the operator is an unshadowed,
	// unredefined builtin name with a matching argument count.
	if name, ok := items[0].(scheme.Sym); ok {
		if in, ok := inlineOps[string(name)]; ok && in.nargs == len(items)-1 &&
			!c.redefined[string(name)] && c.resolve(f, string(name)).kind == refGlobal {
			for i := 1; i < len(items); i++ {
				c.compileExpr(f, items[i], false)
				if i < len(items)-1 {
					f.emit(Instr{Op: OpPush})
					f.depth++
				}
			}
			f.emit(Instr{Op: in.op})
			f.depth -= in.nargs - 1
			return
		}
	}

	n := len(items) - 1
	if tail {
		for _, it := range items {
			c.compileExpr(f, it, false)
			f.emit(Instr{Op: OpPush})
			f.depth++
		}
		f.emit(Instr{Op: OpTailCall, A: int32(n)})
		f.depth -= n + 1
		return
	}
	depth0 := f.depth
	frame := f.emit(Instr{Op: OpFrame})
	f.depth += 4
	for _, it := range items {
		c.compileExpr(f, it, false)
		f.emit(Instr{Op: OpPush})
		f.depth++
	}
	f.emit(Instr{Op: OpCall, A: int32(n)})
	f.code.Instrs[frame].A = int32(len(f.code.Instrs))
	f.depth = depth0
}

// assignedIn reports whether any form in body assigns name with set!,
// looking through nested binders unless they shadow name. It runs on
// fully expanded (core-form) code.
func assignedIn(name string, body []scheme.Datum) bool {
	for _, d := range body {
		if assignedInForm(name, d) {
			return true
		}
	}
	return false
}

func assignedInForm(name string, d scheme.Datum) bool {
	p, ok := d.(*scheme.Pair)
	if !ok {
		return false
	}
	head, _ := p.Car.(scheme.Sym)
	switch head {
	case "quote":
		return false
	case "set!":
		if t, ok := cadr(d).(scheme.Sym); ok && string(t) == name {
			return true
		}
		return assignedInForm(name, caddr(d))
	case "lambda":
		rest, _ := p.Cdr.(*scheme.Pair)
		if rest == nil {
			return false
		}
		names, hasRest := parseFormalsLoose(rest.Car)
		for _, n := range names {
			if n == name {
				return false // shadowed
			}
		}
		if hasRest && restNameLoose(rest.Car) == name {
			return false
		}
		return anyFormAssigns(name, rest.Cdr)
	case "let":
		rest, _ := p.Cdr.(*scheme.Pair)
		if rest == nil {
			return false
		}
		binds, _ := scheme.ListToSlice(rest.Car)
		shadowed := false
		for _, b := range binds {
			bp, ok := b.(*scheme.Pair)
			if !ok {
				continue
			}
			if n, ok := bp.Car.(scheme.Sym); ok && string(n) == name {
				shadowed = true
			}
			if assignedInForm(name, cadr(b)) {
				return true
			}
		}
		if shadowed {
			return false
		}
		return anyFormAssigns(name, rest.Cdr)
	default:
		return anyFormAssigns(name, d)
	}
}

func anyFormAssigns(name string, forms scheme.Datum) bool {
	for {
		p, ok := forms.(*scheme.Pair)
		if !ok {
			return false
		}
		if assignedInForm(name, p.Car) {
			return true
		}
		forms = p.Cdr
	}
}

func parseFormalsLoose(formals scheme.Datum) (names []string, hasRest bool) {
	for {
		switch x := formals.(type) {
		case scheme.Sym:
			return names, true
		case *scheme.Pair:
			if n, ok := x.Car.(scheme.Sym); ok {
				names = append(names, string(n))
			}
			formals = x.Cdr
		default:
			return names, false
		}
	}
}

func restNameLoose(formals scheme.Datum) string {
	for {
		switch x := formals.(type) {
		case scheme.Sym:
			return string(x)
		case *scheme.Pair:
			formals = x.Cdr
		default:
			return ""
		}
	}
}

// Datum helpers.
func cadr(d scheme.Datum) scheme.Datum  { return nthOrNil(d, 1) }
func caddr(d scheme.Datum) scheme.Datum { return nthOrNil(d, 2) }

func nthOrNil(d scheme.Datum, n int) scheme.Datum {
	for i := 0; i <= n; i++ {
		p, ok := d.(*scheme.Pair)
		if !ok {
			return nil
		}
		if i == n {
			return p.Car
		}
		d = p.Cdr
	}
	return nil
}

func headIs(d scheme.Datum, name string) (scheme.Datum, bool) {
	if p, ok := d.(*scheme.Pair); ok {
		if s, ok := p.Car.(scheme.Sym); ok && string(s) == name {
			return d, true
		}
	}
	return d, false
}

// addCode registers a code object and returns its index.
func (vm *Machine) addCode(code *Code) int {
	code.idx = len(vm.codes)
	vm.codes = append(vm.codes, code)
	return code.idx
}

// CodeCount returns the number of compiled code objects.
func (vm *Machine) CodeCount() int { return len(vm.codes) }
