package vm

import (
	"bytes"
	"fmt"
	"math"
	"sync/atomic"

	"gcsim/internal/gc"
	"gcsim/internal/mem"
	"gcsim/internal/scheme"
)

// Word re-exports the tagged value type for brevity.
type Word = scheme.Word

// Machine is a complete Scheme system: memory, collector, compiled code,
// interned symbols, global environment, and the interpreter registers.
type Machine struct {
	Mem *mem.Memory
	Col gc.Collector

	codes []*Code

	// Interpreter registers. acc and clos are roots.
	acc  Word
	clos Word
	sp   uint64 // next free stack slot
	base uint64 // current frame base (address of argument 0)

	insns   uint64 // program instructions (cost-weighted)
	gcInsns uint64 // collector instructions

	symbols     map[string]uint64 // name -> static symbol address
	symbolNames map[uint64]string // reverse map for printing
	globals     map[string]uint64 // name -> static cell address
	globalOrder []string          // definition order, for reports

	out bytes.Buffer // display/write output

	gensymCount int64
	rngState    uint64

	barrierCost uint64 // mutator cost per pointer store (generational)

	// MaxInsns aborts a run that exceeds this instruction count (0 means
	// unlimited); it guards tests against runaway programs. The budget is
	// enforced at safepoints (calls, applies) and taken backward jumps, not
	// per instruction, so a run may overshoot by at most one basic block.
	MaxInsns uint64

	// NoFuse disables superinstruction fusion for code finalized after it
	// is set. Fusion is semantics- and trace-neutral, so this exists only
	// for the differential tests that prove it: set it before the code in
	// question first runs (codes are packed on first entry).
	NoFuse bool

	// VerifyHeap runs the gc.Verify invariant checker after every
	// collection; a violation aborts the run with an error wrapping
	// gc.ErrHeapCorrupt.
	VerifyHeap bool

	// interrupt, when set, stops the run at the next call safepoint with
	// ErrInterrupted. It is the only Machine field safe to touch from
	// another goroutine.
	interrupt atomic.Bool

	// gcEnv is the environment handed to the collector at Attach time,
	// retained so the heap verifier can reuse the same root callbacks.
	gcEnv gc.Env

	// OnAlloc, if set, observes every dynamic object allocation (header
	// address and total words). The behaviour analyzer uses it to detect
	// allocation misses and allocation cycles.
	OnAlloc func(addr uint64, words int)

	// OnGC, if set, observes every collection performed at a safepoint.
	// The event is assembled from the collector's Stats deltas, so it
	// costs nothing when unset and only a struct copy per collection when
	// set — telemetry never touches the per-reference path.
	OnGC func(gc.Event)

	halted bool
}

// New creates a machine with the given tracer and collector. A nil
// collector means linear allocation with the collector disabled (the
// paper's control configuration).
func New(tracer mem.Tracer, col gc.Collector) *Machine {
	if col == nil {
		col = gc.NewNoGC()
	}
	vm := &Machine{
		Mem:         mem.New(tracer),
		Col:         col,
		sp:          mem.StackBase,
		base:        mem.StackBase,
		symbols:     make(map[string]uint64),
		symbolNames: make(map[uint64]string),
		globals:     make(map[string]uint64),
		rngState:    0x9E3779B97F4A7C15,
		clos:        scheme.Undef,
		acc:         scheme.Unspec,
	}
	vm.gcEnv = gc.Env{
		Mem: vm.Mem,
		RegisterRoots: func(visit func(*Word)) {
			visit(&vm.acc)
			visit(&vm.clos)
		},
		StackTop:    func() uint64 { return vm.sp },
		StaticEnd:   func() uint64 { return vm.Mem.StaticNext() },
		ChargeInsns: func(n uint64) { vm.gcInsns += n },
	}
	col.Attach(vm.gcEnv)
	if _, ok := col.(*gc.Generational); ok {
		vm.barrierCost = gc.BarrierCost
	}
	vm.installBuiltins()
	return vm
}

// Insns returns the cost-weighted program instruction count (I_prog).
func (vm *Machine) Insns() uint64 { return vm.insns }

// GCInsns returns the collector instruction count (I_gc).
func (vm *Machine) GCInsns() uint64 { return vm.gcInsns }

// Output returns everything the program has displayed or written.
func (vm *Machine) Output() string { return vm.out.String() }

// ResetOutput clears the captured output.
func (vm *Machine) ResetOutput() { vm.out.Reset() }

// charge adds n program instructions.
func (vm *Machine) charge(n uint64) { vm.insns += n }

// Interrupt requests that the run stop at the next call safepoint with
// ErrInterrupted. It is safe to call from any goroutine (e.g. a
// context.AfterFunc or signal handler) while the machine is running.
func (vm *Machine) Interrupt() { vm.interrupt.Store(true) }

// ClearInterrupt resets a pending interrupt so the machine can run again.
func (vm *Machine) ClearInterrupt() { vm.interrupt.Store(false) }

// collect runs one collection at a safepoint, emitting a gc.Event to the
// OnGC hook when one is installed. The event's work figures are the deltas
// of the collector's Stats across the Collect call; the pause is the I_gc
// it charged.
func (vm *Machine) collect() {
	if vm.VerifyHeap {
		defer func() {
			if err := gc.Verify(vm.Col, vm.gcEnv); err != nil {
				panic(&Error{Msg: "post-collection heap verification failed", Cause: err})
			}
		}()
	}
	if vm.OnGC == nil {
		vm.Col.Collect()
		return
	}
	st := vm.Col.Stats()
	before := *st
	trigger := vm.Col.HeapWords()
	insnsAt := vm.insns
	gcInsns0 := vm.gcInsns
	vm.Col.Collect()
	vm.OnGC(gc.Event{
		Seq:              st.Collections,
		Major:            st.MajorCollections > before.MajorCollections,
		TriggerHeapWords: trigger,
		LiveWords:        st.LiveAfterLast,
		CopiedWords:      st.CopiedWords - before.CopiedWords,
		CopiedObjects:    st.CopiedObjects - before.CopiedObjects,
		ScannedSlots:     st.ScannedSlots - before.ScannedSlots,
		PauseInsns:       vm.gcInsns - gcInsns0,
		InsnsAt:          insnsAt,
	})
}

// alloc allocates a dynamic object (header plus payload), writes its
// header, and returns the header address. It never collects; collections
// happen at interpreter safepoints.
func (vm *Machine) alloc(kind scheme.Kind, payloadWords int) uint64 {
	total := payloadWords + 1
	addr := vm.Col.Alloc(total)
	vm.Mem.C.AllocWords += uint64(total)
	vm.Mem.C.AllocObjects++
	if hw := vm.Col.HeapWords(); hw > vm.Mem.C.AllocBytesHighWater/mem.WordBytes {
		vm.Mem.C.AllocBytesHighWater = hw * mem.WordBytes
	}
	if vm.OnAlloc != nil {
		vm.OnAlloc(addr, total)
	}
	vm.Mem.Store(addr, scheme.MakeHeader(kind, payloadWords))
	return addr
}

// allocStaticObject lays out an object in the static area (program image:
// symbols, quoted constants, global cells). Static stores are untraced —
// they happen while the image is built, before the measured run.
func (vm *Machine) allocStaticObject(kind scheme.Kind, payload []Word) uint64 {
	addr := vm.Mem.AllocStatic(len(payload) + 1)
	vm.Mem.Poke(addr, scheme.MakeHeader(kind, len(payload)))
	for i, w := range payload {
		vm.Mem.Poke(addr+1+uint64(i), w)
	}
	return addr
}

// storeSlot performs a program store into an object slot, applying the
// generational write barrier.
func (vm *Machine) storeSlot(addr uint64, w Word) {
	vm.Mem.Store(addr, w)
	if vm.barrierCost != 0 {
		vm.charge(vm.barrierCost)
		vm.Col.WriteBarrier(addr, w)
	}
}

// push pushes a word on the stack.
func (vm *Machine) push(w Word) {
	if vm.sp >= mem.StackLimit {
		panic(ErrStackOverflow)
	}
	vm.Mem.StoreStack(vm.sp, w)
	vm.sp++
}

// Intern returns the static symbol object for name, creating it on first
// use. Symbol payloads are [name-string-pointer, hash]; both the symbol
// and its name string are static, so symbols never move and eq? on symbols
// is stable across collections.
func (vm *Machine) Intern(name string) Word {
	if addr, ok := vm.symbols[name]; ok {
		return scheme.FromPtr(addr)
	}
	str := vm.staticString(name)
	h := int64(hashString(name) & (1<<60 - 1))
	addr := vm.allocStaticObject(scheme.KindSymbol, []Word{str, scheme.FromFixnum(h)})
	vm.symbols[name] = addr
	vm.symbolNames[addr] = name
	return scheme.FromPtr(addr)
}

// SymbolName returns the name of an interned symbol, or "" if w is not one.
func (vm *Machine) SymbolName(w Word) string {
	if !scheme.IsPtr(w) {
		return ""
	}
	return vm.symbolNames[scheme.PtrAddr(w)]
}

// staticString lays out a string object in static memory.
func (vm *Machine) staticString(s string) Word {
	return scheme.FromPtr(vm.allocStaticObject(scheme.KindString, stringPayload(s)))
}

// stringPayload packs a Go string into the string-object payload layout:
// a byte-length fixnum followed by the bytes packed eight per word.
func stringPayload(s string) []Word {
	words := make([]Word, 1+(len(s)+7)/8)
	words[0] = scheme.FromFixnum(int64(len(s)))
	for i := 0; i < len(s); i++ {
		words[1+i/8] |= Word(s[i]) << (8 * (i % 8))
	}
	return words
}

// globalCell returns the static cell address for a global variable,
// creating an unbound cell on first reference.
func (vm *Machine) globalCell(name string) uint64 {
	if addr, ok := vm.globals[name]; ok {
		return addr
	}
	addr := vm.allocStaticObject(scheme.KindCell, []Word{scheme.Undef})
	vm.globals[name] = addr
	vm.globalOrder = append(vm.globalOrder, name)
	return addr
}

// DefineGlobal binds a global variable to a value, as top-level define
// does.
func (vm *Machine) DefineGlobal(name string, w Word) {
	vm.Mem.Poke(vm.globalCell(name)+1, w)
}

// GlobalRef returns the value of a global variable for inspection by tests
// and tools (untraced).
func (vm *Machine) GlobalRef(name string) (Word, bool) {
	addr, ok := vm.globals[name]
	if !ok {
		return scheme.Undef, false
	}
	w := vm.Mem.Peek(addr + 1)
	return w, w != scheme.Undef
}

// hashString is FNV-1a, used for symbol hash codes.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Error is a Scheme runtime error. Cause, when set, carries an underlying
// error (e.g. a gc.VerifyError) reachable through errors.Is/As.
type Error struct {
	Msg   string
	Cause error
}

func (e *Error) Error() string {
	if e.Cause != nil {
		return "scheme: " + e.Msg + ": " + e.Cause.Error()
	}
	return "scheme: " + e.Msg
}

func (e *Error) Unwrap() error { return e.Cause }

// errf raises a Scheme error by panicking; Run recovers it.
func (vm *Machine) errf(format string, args ...any) {
	panic(&Error{Msg: fmt.Sprintf(format, args...)})
}

// flonum boxes a float in the dynamic area.
func (vm *Machine) flonum(f float64) Word {
	addr := vm.alloc(scheme.KindFlonum, 1)
	vm.Mem.Store(addr+1, Word(math.Float64bits(f)))
	return scheme.FromPtr(addr)
}

// kindOf returns the object kind of a pointer word, checked host-side
// (models tag-in-pointer type checks, which touch no memory).
func (vm *Machine) kindOf(w Word) (scheme.Kind, bool) {
	if !scheme.IsPtr(w) {
		return 0, false
	}
	h := vm.Mem.Peek(scheme.PtrAddr(w))
	if !scheme.IsHeader(h) {
		return 0, false
	}
	return scheme.HeaderKind(h), true
}

// isKind reports whether w points to an object of kind k.
func (vm *Machine) isKind(w Word, k scheme.Kind) bool {
	got, ok := vm.kindOf(w)
	return ok && got == k
}

// checkKind panics with a type error unless w is an object of kind k.
func (vm *Machine) checkKind(w Word, k scheme.Kind, who string) uint64 {
	if !vm.isKind(w, k) {
		vm.errf("%s: expected %s, got %s", who, k, vm.DescribeValue(w))
	}
	return scheme.PtrAddr(w)
}
