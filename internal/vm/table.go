package vm

import "gcsim/internal/scheme"

// Address-hashed (eq?) tables, modeled on the T system's object hash
// tables. Keys hash on their tagged-word value — for heap objects, their
// address — so whenever a collection moves objects the table's layout is
// stale. Each table records the collector epoch it was last built in; the
// first access after a collection rehashes the whole table. This is
// precisely the paper's Section 6 source of ΔI_prog: "Because the collector
// can move objects, each table is automatically rehashed, upon its next
// reference, after a collection."

const (
	tableInitialCap = 16
	// rehash and growth instruction costs per entry, charged to the
	// program (ΔI_prog), not the collector.
	tableRehashCostPerEntry = 14
)

// tableSlots returns the table's payload fields.
func (vm *Machine) tableFields(t Word, who string) (addr uint64, vec Word, count int64) {
	addr = vm.checkKind(t, scheme.KindTable, who)
	vec = vm.Mem.Load(addr + 1)
	count = scheme.FixnumValue(vm.Mem.Load(addr + 2))
	return
}

// hashWord mixes a tagged word into a bucket index seed.
func hashWord(w Word) uint64 {
	h := uint64(w)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func (vm *Machine) makeTable() Word {
	vec := vm.makeVector(2*tableInitialCap, scheme.Undef)
	addr := vm.alloc(scheme.KindTable, 3)
	vm.Mem.Store(addr+1, vec)
	vm.Mem.Store(addr+2, scheme.FromFixnum(0))
	vm.Mem.Store(addr+3, scheme.FromFixnum(int64(vm.Col.Epoch())))
	return scheme.FromPtr(addr)
}

// maybeRehash rebuilds the table if a collection has moved its keys since
// the last access.
func (vm *Machine) maybeRehash(tAddr uint64) {
	epoch := scheme.FixnumValue(vm.Mem.Load(tAddr + 3))
	if uint64(epoch) == vm.Col.Epoch() {
		return
	}
	vm.rebuildTable(tAddr, 0)
	vm.Mem.Store(tAddr+3, scheme.FromFixnum(int64(vm.Col.Epoch())))
}

// rebuildTable reinserts every entry into a fresh vector; extraCap > 0
// grows the table.
func (vm *Machine) rebuildTable(tAddr uint64, extraCap int) {
	oldVec := vm.Mem.Load(tAddr + 1)
	oldLen := vm.vectorLen(oldVec)
	newLen := oldLen
	if extraCap > 0 {
		newLen = oldLen * 2
	}
	newVec := vm.makeVector(newLen, scheme.Undef)
	newCap := newLen / 2
	oldAddr := scheme.PtrAddr(oldVec)
	newAddr := scheme.PtrAddr(newVec)
	for i := 0; i < oldLen; i += 2 {
		k := vm.Mem.Load(oldAddr + 1 + uint64(i))
		if k == scheme.Undef {
			continue
		}
		v := vm.Mem.Load(oldAddr + 2 + uint64(i))
		slot := vm.probeInsert(newAddr, newCap, k)
		vm.Mem.Store(newAddr+1+uint64(2*slot), k)
		vm.Mem.Store(newAddr+2+uint64(2*slot), v)
		vm.charge(tableRehashCostPerEntry)
	}
	vm.storeSlot(tAddr+1, newVec)
}

// probeInsert finds the slot for key k in an open-addressed (key,value)
// vector at vecAddr with cap slots, returning the first empty or matching
// slot index.
func (vm *Machine) probeInsert(vecAddr uint64, cap int, k Word) int {
	slot := int(hashWord(k) % uint64(cap))
	for {
		cur := vm.Mem.Load(vecAddr + 1 + uint64(2*slot))
		if cur == scheme.Undef || cur == k {
			return slot
		}
		slot = (slot + 1) % cap
		vm.charge(4)
	}
}

func (vm *Machine) tableRef(t, k, dflt Word) Word {
	tAddr, _, _ := vm.tableFields(t, "table-ref")
	vm.maybeRehash(tAddr)
	vec := vm.Mem.Load(tAddr + 1)
	cap := vm.vectorLen(vec) / 2
	vecAddr := scheme.PtrAddr(vec)
	slot := int(hashWord(k) % uint64(cap))
	for {
		cur := vm.Mem.Load(vecAddr + 1 + uint64(2*slot))
		if cur == k {
			return vm.Mem.Load(vecAddr + 2 + uint64(2*slot))
		}
		if cur == scheme.Undef {
			return dflt
		}
		slot = (slot + 1) % cap
		vm.charge(4)
	}
}

func (vm *Machine) tableSet(t, k, v Word) {
	tAddr, vec, count := vm.tableFields(t, "table-set!")
	vm.maybeRehash(tAddr)
	vec = vm.Mem.Load(tAddr + 1)
	cap := vm.vectorLen(vec) / 2
	if int(count)*10 >= cap*7 {
		vm.rebuildTable(tAddr, cap)
		vec = vm.Mem.Load(tAddr + 1)
		cap = vm.vectorLen(vec) / 2
	}
	vecAddr := scheme.PtrAddr(vec)
	slot := vm.probeInsert(vecAddr, cap, k)
	cur := vm.Mem.Load(vecAddr + 1 + uint64(2*slot))
	if cur == scheme.Undef {
		vm.Mem.Store(tAddr+2, scheme.FromFixnum(count+1))
	}
	vm.storeSlot(vecAddr+1+uint64(2*slot), k)
	vm.storeSlot(vecAddr+2+uint64(2*slot), v)
}

func defTables() {
	def("make-table", 0, true, 20, func(vm *Machine, n int) Word { return vm.makeTable() })
	def("table-ref", 2, true, 10, func(vm *Machine, n int) Word {
		dflt := Word(scheme.False)
		if n == 3 {
			dflt = vm.arg(2)
		}
		return vm.tableRef(vm.arg(0), vm.arg(1), dflt)
	})
	def("table-set!", 3, false, 12, func(vm *Machine, n int) Word {
		vm.tableSet(vm.arg(0), vm.arg(1), vm.arg(2))
		return scheme.Unspec
	})
	def("table-count", 1, false, 4, func(vm *Machine, n int) Word {
		_, _, count := vm.tableFields(vm.arg(0), "table-count")
		return scheme.FromFixnum(count)
	})
	def("table->list", 1, false, 10, func(vm *Machine, n int) Word {
		tAddr, _, _ := vm.tableFields(vm.arg(0), "table->list")
		vm.maybeRehash(tAddr)
		vec := vm.Mem.Load(tAddr + 1)
		length := vm.vectorLen(vec)
		vecAddr := scheme.PtrAddr(vec)
		out := scheme.Nil
		for i := length - 2; i >= 0; i -= 2 {
			k := vm.Mem.Load(vecAddr + 1 + uint64(i))
			if k == scheme.Undef {
				continue
			}
			v := vm.Mem.Load(vecAddr + 2 + uint64(i))
			out = vm.cons(vm.cons(k, v), out)
			vm.charge(12)
		}
		return out
	})
}
