package vm

import (
	"fmt"

	"gcsim/internal/scheme"
)

// The expander rewrites the surface language into the compiler's core:
// quote, if, set!, lambda, begin, let, define, and application. Derived
// forms — let*, letrec, named let, cond, case, and, or, when, unless, do,
// quasiquote, and define with procedure syntax — are expanded here, and
// bodies that begin with internal defines are rewritten letrec*-style.

func sym(s string) scheme.Datum              { return scheme.Sym(s) }
func lst(items ...scheme.Datum) scheme.Datum { return scheme.List(items...) }

var gensymCounter int

// expandGensym makes a compile-time symbol that cannot collide with
// program identifiers (% is reserved by convention).
func expandGensym(prefix string) scheme.Sym {
	gensymCounter++
	return scheme.Sym(fmt.Sprintf("%%%s.%d", prefix, gensymCounter))
}

func (c *compiler) expand(d scheme.Datum) scheme.Datum {
	p, ok := d.(*scheme.Pair)
	if !ok {
		return d
	}
	head, _ := p.Car.(scheme.Sym)
	switch head {
	case "quote":
		return d
	case "if", "set!", "begin":
		return c.expandParts(d)
	case "lambda":
		items, ok := scheme.ListToSlice(d)
		if !ok || len(items) < 3 {
			compileErrf(d, "malformed lambda")
		}
		body := c.expandBody(items[2:], d)
		return scheme.Cons(sym("lambda"), scheme.Cons(items[1], body))
	case "define":
		return c.expandDefine(d)
	case "let":
		if _, isSym := cadr(d).(scheme.Sym); isSym {
			return c.expandNamedLet(d)
		}
		return c.expandLet(d)
	case "let*":
		return c.expandLetStar(d)
	case "letrec", "letrec*":
		return c.expandLetrec(d)
	case "cond":
		return c.expandCond(d)
	case "case":
		return c.expandCase(d)
	case "and":
		return c.expandAnd(d)
	case "or":
		return c.expandOr(d)
	case "when":
		items := c.formItems(d, 3, "when")
		return c.expand(lst(sym("if"), items[1], scheme.Cons(sym("begin"), scheme.List(items[2:]...))))
	case "unless":
		items := c.formItems(d, 3, "unless")
		return c.expand(lst(sym("if"), items[1], lst(sym("quote"), scheme.Unspecified), scheme.Cons(sym("begin"), scheme.List(items[2:]...))))
	case "do":
		return c.expandDo(d)
	case "quasiquote":
		return c.expand(c.expandQuasi(cadr(d), 1))
	case "delay", "unquote", "unquote-splicing":
		compileErrf(d, "%s is not supported", head)
	}
	return c.expandParts(d)
}

// formItems flattens a form and checks a minimum length.
func (c *compiler) formItems(d scheme.Datum, min int, what string) []scheme.Datum {
	items, ok := scheme.ListToSlice(d)
	if !ok || len(items) < min {
		compileErrf(d, "malformed %s", what)
	}
	return items
}

// expandParts expands every element of a form (application, if, begin...).
func (c *compiler) expandParts(d scheme.Datum) scheme.Datum {
	items, ok := scheme.ListToSlice(d)
	if !ok {
		compileErrf(d, "improper list in expression")
	}
	out := make([]scheme.Datum, len(items))
	head, isHeadSym := items[0].(scheme.Sym)
	for i, it := range items {
		if i == 0 && isHeadSym && (head == "if" || head == "set!" || head == "begin") {
			out[i] = it
			continue
		}
		if i == 1 && isHeadSym && head == "set!" {
			out[i] = it // assignment target is not an expression
			continue
		}
		out[i] = c.expand(it)
	}
	return scheme.List(out...)
}

// expandDefine normalizes both define forms to (define name expr).
func (c *compiler) expandDefine(d scheme.Datum) scheme.Datum {
	items := c.formItems(d, 2, "define")
	switch t := items[1].(type) {
	case scheme.Sym:
		if len(items) == 2 {
			return lst(sym("define"), t, lst(sym("quote"), scheme.Unspecified))
		}
		if len(items) != 3 {
			compileErrf(d, "malformed define")
		}
		return lst(sym("define"), t, c.expand(items[2]))
	case *scheme.Pair:
		// (define (f . formals) body...) => (define f (lambda formals body...))
		name := t.Car
		formals := t.Cdr
		lam := scheme.Cons(sym("lambda"), scheme.Cons(formals, scheme.List(items[2:]...)))
		return lst(sym("define"), name, c.expand(lam))
	default:
		compileErrf(d, "malformed define")
		return nil
	}
}

// expandBody handles internal defines: a body whose leading forms are
// defines becomes a letrec*-style let over boxed bindings.
func (c *compiler) expandBody(forms []scheme.Datum, whole scheme.Datum) scheme.Datum {
	var defs []scheme.Datum
	i := 0
	for ; i < len(forms); i++ {
		if _, ok := headIs(forms[i], "define"); ok {
			defs = append(defs, c.expandDefine(forms[i]))
		} else {
			break
		}
	}
	rest := forms[i:]
	if len(rest) == 0 {
		compileErrf(whole, "body has no expressions")
	}
	if len(defs) == 0 {
		out := make([]scheme.Datum, len(rest))
		for j, f := range rest {
			out[j] = c.expand(f)
		}
		return scheme.List(out...)
	}
	// (let ((n1 '0) ...) (set! n1 e1) ... body...)
	var binds, sets []scheme.Datum
	for _, def := range defs {
		name := cadr(def)
		val := caddr(def)
		binds = append(binds, lst(name, lst(sym("quote"), int64(0))))
		sets = append(sets, lst(sym("set!"), name, val))
	}
	body := append(sets, rest...)
	let := scheme.Cons(sym("let"), scheme.Cons(scheme.List(binds...), scheme.List(body...)))
	return scheme.List(c.expand(let))
}

func (c *compiler) expandLet(d scheme.Datum) scheme.Datum {
	items := c.formItems(d, 3, "let")
	binds, ok := scheme.ListToSlice(items[1])
	if !ok {
		compileErrf(d, "malformed let bindings")
	}
	outBinds := make([]scheme.Datum, len(binds))
	for i, b := range binds {
		bi, ok := scheme.ListToSlice(b)
		if !ok || len(bi) != 2 {
			compileErrf(d, "malformed let binding")
		}
		outBinds[i] = lst(bi[0], c.expand(bi[1]))
	}
	body := c.expandBody(items[2:], d)
	return scheme.Cons(sym("let"), scheme.Cons(scheme.List(outBinds...), body))
}

func (c *compiler) expandLetStar(d scheme.Datum) scheme.Datum {
	items := c.formItems(d, 3, "let*")
	binds, ok := scheme.ListToSlice(items[1])
	if !ok {
		compileErrf(d, "malformed let* bindings")
	}
	body := scheme.List(items[2:]...)
	if len(binds) <= 1 {
		return c.expand(scheme.Cons(sym("let"), scheme.Cons(items[1], body)))
	}
	inner := scheme.Cons(sym("let*"), scheme.Cons(scheme.List(binds[1:]...), body))
	return c.expand(lst(sym("let"), scheme.List(binds[0]), inner))
}

func (c *compiler) expandLetrec(d scheme.Datum) scheme.Datum {
	items := c.formItems(d, 3, "letrec")
	binds, ok := scheme.ListToSlice(items[1])
	if !ok {
		compileErrf(d, "malformed letrec bindings")
	}
	var outBinds, sets []scheme.Datum
	for _, b := range binds {
		bi, ok := scheme.ListToSlice(b)
		if !ok || len(bi) != 2 {
			compileErrf(d, "malformed letrec binding")
		}
		outBinds = append(outBinds, lst(bi[0], lst(sym("quote"), int64(0))))
		sets = append(sets, lst(sym("set!"), bi[0], bi[1]))
	}
	body := append(sets, items[2:]...)
	let := scheme.Cons(sym("let"), scheme.Cons(scheme.List(outBinds...), scheme.List(body...)))
	return c.expand(let)
}

func (c *compiler) expandNamedLet(d scheme.Datum) scheme.Datum {
	items := c.formItems(d, 4, "named let")
	name := items[1]
	binds, ok := scheme.ListToSlice(items[2])
	if !ok {
		compileErrf(d, "malformed named-let bindings")
	}
	var vars, inits []scheme.Datum
	for _, b := range binds {
		bi, ok := scheme.ListToSlice(b)
		if !ok || len(bi) != 2 {
			compileErrf(d, "malformed named-let binding")
		}
		vars = append(vars, bi[0])
		inits = append(inits, bi[1])
	}
	lam := scheme.Cons(sym("lambda"), scheme.Cons(scheme.List(vars...), scheme.List(items[3:]...)))
	// (let ((name '0)) (set! name lam) (name inits...))
	call := scheme.Cons(name, scheme.List(inits...))
	let := lst(sym("let"), scheme.List(lst(name, lst(sym("quote"), int64(0)))),
		lst(sym("set!"), name, lam), call)
	return c.expand(let)
}

func (c *compiler) expandCond(d scheme.Datum) scheme.Datum {
	items := c.formItems(d, 2, "cond")
	return c.expand(c.expandCondClauses(items[1:], d))
}

func (c *compiler) expandCondClauses(clauses []scheme.Datum, whole scheme.Datum) scheme.Datum {
	if len(clauses) == 0 {
		return lst(sym("quote"), scheme.Unspecified)
	}
	cl, ok := scheme.ListToSlice(clauses[0])
	if !ok || len(cl) == 0 {
		compileErrf(whole, "malformed cond clause")
	}
	if s, ok := cl[0].(scheme.Sym); ok && s == "else" {
		return scheme.Cons(sym("begin"), scheme.List(cl[1:]...))
	}
	rest := c.expandCondClauses(clauses[1:], whole)
	if len(cl) == 1 {
		// (cond (test) ...) yields the test value if true.
		t := expandGensym("t")
		return lst(sym("let"), scheme.List(lst(t, cl[0])),
			lst(sym("if"), t, t, rest))
	}
	if s, ok := cl[1].(scheme.Sym); ok && s == "=>" {
		if len(cl) != 3 {
			compileErrf(whole, "malformed => clause")
		}
		t := expandGensym("t")
		return lst(sym("let"), scheme.List(lst(t, cl[0])),
			lst(sym("if"), t, lst(cl[2], t), rest))
	}
	return lst(sym("if"), cl[0],
		scheme.Cons(sym("begin"), scheme.List(cl[1:]...)), rest)
}

func (c *compiler) expandCase(d scheme.Datum) scheme.Datum {
	items := c.formItems(d, 3, "case")
	key := expandGensym("key")
	var out scheme.Datum = lst(sym("quote"), scheme.Unspecified)
	clauses := items[2:]
	for i := len(clauses) - 1; i >= 0; i-- {
		cl, ok := scheme.ListToSlice(clauses[i])
		if !ok || len(cl) < 2 {
			compileErrf(d, "malformed case clause")
		}
		body := scheme.Cons(sym("begin"), scheme.List(cl[1:]...))
		if s, ok := cl[0].(scheme.Sym); ok && s == "else" {
			out = body
			continue
		}
		test := lst(sym("memv"), key, lst(sym("quote"), cl[0]))
		out = lst(sym("if"), test, body, out)
	}
	return c.expand(lst(sym("let"), scheme.List(lst(key, items[1])), out))
}

func (c *compiler) expandAnd(d scheme.Datum) scheme.Datum {
	items := c.formItems(d, 1, "and")
	switch len(items) {
	case 1:
		return lst(sym("quote"), true)
	case 2:
		return c.expand(items[1])
	default:
		rest := scheme.Cons(sym("and"), scheme.List(items[2:]...))
		return c.expand(lst(sym("if"), items[1], rest, false))
	}
}

func (c *compiler) expandOr(d scheme.Datum) scheme.Datum {
	items := c.formItems(d, 1, "or")
	switch len(items) {
	case 1:
		return lst(sym("quote"), false)
	case 2:
		return c.expand(items[1])
	default:
		t := expandGensym("t")
		rest := scheme.Cons(sym("or"), scheme.List(items[2:]...))
		return c.expand(lst(sym("let"), scheme.List(lst(t, items[1])),
			lst(sym("if"), t, t, rest)))
	}
}

// expandDo rewrites (do ((v init step)...) (test result...) body...) into a
// named let.
func (c *compiler) expandDo(d scheme.Datum) scheme.Datum {
	items := c.formItems(d, 3, "do")
	specs, ok := scheme.ListToSlice(items[1])
	if !ok {
		compileErrf(d, "malformed do specs")
	}
	exit, ok := scheme.ListToSlice(items[2])
	if !ok || len(exit) == 0 {
		compileErrf(d, "malformed do exit clause")
	}
	loop := expandGensym("do")
	var binds, steps []scheme.Datum
	for _, s := range specs {
		si, ok := scheme.ListToSlice(s)
		if !ok || len(si) < 2 || len(si) > 3 {
			compileErrf(d, "malformed do spec")
		}
		binds = append(binds, lst(si[0], si[1]))
		if len(si) == 3 {
			steps = append(steps, si[2])
		} else {
			steps = append(steps, si[0])
		}
	}
	again := scheme.Cons(loop, scheme.List(steps...))
	var resultExpr scheme.Datum = lst(sym("quote"), scheme.Unspecified)
	if len(exit) > 1 {
		resultExpr = scheme.Cons(sym("begin"), scheme.List(exit[1:]...))
	}
	body := append(append([]scheme.Datum{}, items[3:]...), again)
	loopBody := lst(sym("if"), exit[0], resultExpr,
		scheme.Cons(sym("begin"), scheme.List(body...)))
	named := lst(sym("let"), loop, scheme.List(binds...), loopBody)
	return c.expand(named)
}

// expandQuasi implements quasiquotation with nesting.
func (c *compiler) expandQuasi(t scheme.Datum, depth int) scheme.Datum {
	switch x := t.(type) {
	case *scheme.Pair:
		if h, ok := x.Car.(scheme.Sym); ok {
			switch h {
			case "unquote":
				if depth == 1 {
					return cadr(t)
				}
				return lst(sym("list"), lst(sym("quote"), sym("unquote")),
					c.expandQuasi(cadr(t), depth-1))
			case "quasiquote":
				return lst(sym("list"), lst(sym("quote"), sym("quasiquote")),
					c.expandQuasi(cadr(t), depth+1))
			}
		}
		if hp, ok := x.Car.(*scheme.Pair); ok {
			if h, ok := hp.Car.(scheme.Sym); ok && h == "unquote-splicing" && depth == 1 {
				return lst(sym("append"), cadr(x.Car), c.expandQuasi(x.Cdr, depth))
			}
		}
		return lst(sym("cons"), c.expandQuasi(x.Car, depth), c.expandQuasi(x.Cdr, depth))
	case scheme.Vec:
		var asList scheme.Datum = scheme.Empty
		for i := len(x) - 1; i >= 0; i-- {
			asList = scheme.Cons(x[i], asList)
		}
		return lst(sym("list->vector"), c.expandQuasi(asList, depth))
	default:
		return lst(sym("quote"), t)
	}
}
