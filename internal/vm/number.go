package vm

import (
	"math"

	"gcsim/internal/scheme"
)

// Generic arithmetic over fixnums and boxed flonums. Fixnum overflow is an
// error (the dialect has no bignums); mixed operations promote to flonum.

func (vm *Machine) isNumber(w Word) bool {
	return scheme.IsFixnum(w) || vm.isFlonum(w)
}

// toFloat converts any number to float64.
func (vm *Machine) toFloat(w Word, who string) float64 {
	if scheme.IsFixnum(w) {
		return float64(scheme.FixnumValue(w))
	}
	if vm.isFlonum(w) {
		return vm.flonumValue(w)
	}
	vm.errf("%s: expected a number, got %s", who, vm.DescribeValue(w))
	return 0
}

func (vm *Machine) checkFixRange(v int64, who string) Word {
	if v < scheme.FixnumMin || v > scheme.FixnumMax {
		vm.errf("%s: fixnum overflow", who)
	}
	return scheme.FromFixnum(v)
}

func (vm *Machine) numAdd(a, b Word) Word {
	if scheme.IsFixnum(a) && scheme.IsFixnum(b) {
		return vm.checkFixRange(scheme.FixnumValue(a)+scheme.FixnumValue(b), "+")
	}
	return vm.flonum(vm.toFloat(a, "+") + vm.toFloat(b, "+"))
}

func (vm *Machine) numSub(a, b Word) Word {
	if scheme.IsFixnum(a) && scheme.IsFixnum(b) {
		return vm.checkFixRange(scheme.FixnumValue(a)-scheme.FixnumValue(b), "-")
	}
	return vm.flonum(vm.toFloat(a, "-") - vm.toFloat(b, "-"))
}

func (vm *Machine) numMul(a, b Word) Word {
	if scheme.IsFixnum(a) && scheme.IsFixnum(b) {
		x, y := scheme.FixnumValue(a), scheme.FixnumValue(b)
		p := x * y
		if x != 0 && (p/x != y || p < scheme.FixnumMin || p > scheme.FixnumMax) {
			vm.errf("*: fixnum overflow")
		}
		return scheme.FromFixnum(p)
	}
	return vm.flonum(vm.toFloat(a, "*") * vm.toFloat(b, "*"))
}

func (vm *Machine) numDiv(a, b Word) Word {
	if scheme.IsFixnum(a) && scheme.IsFixnum(b) {
		x, y := scheme.FixnumValue(a), scheme.FixnumValue(b)
		if y != 0 && x%y == 0 {
			return scheme.FromFixnum(x / y)
		}
		if y == 0 {
			vm.errf("/: division by zero")
		}
	}
	fb := vm.toFloat(b, "/")
	if fb == 0 {
		vm.errf("/: division by zero")
	}
	return vm.flonum(vm.toFloat(a, "/") / fb)
}

// numCompare returns -1, 0, or 1.
func (vm *Machine) numCompare(a, b Word, who string) int {
	if scheme.IsFixnum(a) && scheme.IsFixnum(b) {
		x, y := scheme.FixnumValue(a), scheme.FixnumValue(b)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	}
	x, y := vm.toFloat(a, who), vm.toFloat(b, who)
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	default:
		return 0
	}
}

func (vm *Machine) fixnumArg(w Word, who string) int64 {
	if !scheme.IsFixnum(w) {
		vm.errf("%s: expected an integer, got %s", who, vm.DescribeValue(w))
	}
	return scheme.FixnumValue(w)
}

func (vm *Machine) quotient(a, b Word) Word {
	x, y := vm.fixnumArg(a, "quotient"), vm.fixnumArg(b, "quotient")
	if y == 0 {
		vm.errf("quotient: division by zero")
	}
	return scheme.FromFixnum(x / y)
}

func (vm *Machine) remainder(a, b Word) Word {
	x, y := vm.fixnumArg(a, "remainder"), vm.fixnumArg(b, "remainder")
	if y == 0 {
		vm.errf("remainder: division by zero")
	}
	return scheme.FromFixnum(x % y)
}

func (vm *Machine) modulo(a, b Word) Word {
	x, y := vm.fixnumArg(a, "modulo"), vm.fixnumArg(b, "modulo")
	if y == 0 {
		vm.errf("modulo: division by zero")
	}
	m := x % y
	if m != 0 && (m < 0) != (y < 0) {
		m += y
	}
	return scheme.FromFixnum(m)
}

// float1 wraps a one-argument math function as a flonum builtin.
func (vm *Machine) float1(f func(float64) float64, w Word, who string) Word {
	return vm.flonum(f(vm.toFloat(w, who)))
}

// numToString renders a number as display would.
func (vm *Machine) numToString(w Word) string {
	if scheme.IsFixnum(w) {
		return scheme.WriteDatum(scheme.FixnumValue(w))
	}
	return scheme.WriteDatum(vm.flonumValue(w))
}

// exactToInexact and inexactToExact implement the R4RS conversions the
// workloads need.
func (vm *Machine) exactToInexact(w Word) Word {
	if scheme.IsFixnum(w) {
		return vm.flonum(float64(scheme.FixnumValue(w)))
	}
	if vm.isFlonum(w) {
		return w
	}
	vm.errf("exact->inexact: expected a number")
	return scheme.Unspec
}

func (vm *Machine) inexactToExact(w Word) Word {
	if scheme.IsFixnum(w) {
		return w
	}
	f := vm.flonumValue(w)
	if f != math.Trunc(f) || math.Abs(f) > float64(scheme.FixnumMax) {
		vm.errf("inexact->exact: %v is not an exact integer", f)
	}
	return scheme.FromFixnum(int64(f))
}
