// Package report renders the human-readable run reports the CLIs print.
// It exists so every consumer of sweep results — gcsim's local paths, the
// gcsimd server's /report endpoint, and gcsim's -remote client — formats
// the same data through the same code and therefore produces byte-identical
// text. The functions take plain stats (a run header plus rebuilt caches),
// never live simulator objects, so a report can be rendered from a
// checkpoint, a telemetry record, or a server response as easily as from a
// just-finished run.
package report

import (
	"fmt"
	"io"

	"gcsim/internal/cache"
	"gcsim/internal/gc"
)

// Run is the per-run header every report shares: the identity and global
// counts that do not vary across cache configurations.
type Run struct {
	Name      string // workload name or program path
	Collector string
	GCStats   gc.Stats
	Checksum  int64
	Insns     uint64 // I_prog
	GCInsns   uint64 // I_gc
}

// CacheFor rebuilds a report-ready cache from a configuration and its
// measured statistics (e.g. loaded from a checkpoint or a server result).
func CacheFor(cfg cache.Config, s cache.Stats) *cache.Cache {
	c := cache.New(cfg)
	c.S = s
	return c
}

// Render prints the standard report for a completed sweep: the full
// single-configuration report when one cache was swept, otherwise the
// sweep header followed by the per-configuration table.
func Render(out io.Writer, run Run, caches []*cache.Cache, verbose bool) {
	if len(caches) == 1 {
		Single(out, run, caches[0], verbose)
		return
	}
	Header(out, run)
	Table(out, caches, run.Insns, verbose)
}

// Single prints the one-configuration report.
func Single(out io.Writer, run Run, c *cache.Cache, verbose bool) {
	cfg := c.Config()
	s := &c.S
	fmt.Fprintf(out, "workload:    %s\n", run.Name)
	fmt.Fprintf(out, "collector:   %s (%d collections, %d words copied)\n",
		run.Collector, run.GCStats.Collections, run.GCStats.CopiedWords)
	fmt.Fprintf(out, "cache:       %v\n", cfg)
	fmt.Fprintf(out, "checksum:    %d\n", run.Checksum)
	fmt.Fprintf(out, "insns:       %d program + %d collector\n", run.Insns, run.GCInsns)
	fmt.Fprintf(out, "refs:        %d program + %d collector\n", s.Refs(), s.GCReads+s.GCWrites)
	fmt.Fprintf(out, "misses:      %d penalized (%d read, %d write), %d allocation claims\n",
		s.Misses(), s.ReadMisses, s.WriteMisses, s.WriteAllocs)
	fmt.Fprintf(out, "miss ratio:  %.5f\n", s.MissRatio())
	fmt.Fprintf(out, "writebacks:  %d\n", s.Writebacks)
	for _, p := range cache.Processors {
		o := p.CacheOverhead(s.Misses(), run.Insns, cfg.BlockBytes)
		fmt.Fprintf(out, "O_cache(%s, penalty %d cycles): %.4f\n", p.Name, p.MissPenalty(cfg.BlockBytes), o)
	}
	if verbose {
		fmt.Fprintf(out, "collector misses: %d; collector writebacks: %d\n", s.GCMisses(), s.GCWritebacks)
	}
}

// Header prints the per-run lines above a multi-configuration table.
func Header(out io.Writer, run Run) {
	fmt.Fprintf(out, "workload:    %s\n", run.Name)
	fmt.Fprintf(out, "collector:   %s (%d collections, %d words copied)\n",
		run.Collector, run.GCStats.Collections, run.GCStats.CopiedWords)
	fmt.Fprintf(out, "checksum:    %d\n", run.Checksum)
	fmt.Fprintf(out, "insns:       %d program + %d collector\n", run.Insns, run.GCInsns)
}

// Table prints one row per swept configuration.
func Table(out io.Writer, caches []*cache.Cache, insns uint64, verbose bool) {
	fmt.Fprintf(out, "\n%-22s %12s %10s %12s %10s %10s\n",
		"config", "misses", "ratio", "writebacks", "O(slow)", "O(fast)")
	for _, c := range caches {
		cfg := c.Config()
		s := &c.S
		fmt.Fprintf(out, "%-22s %12d %10.5f %12d %10.4f %10.4f\n",
			cfg.String(), s.Misses(), s.MissRatio(), s.Writebacks,
			cache.Slow.CacheOverhead(s.Misses(), insns, cfg.BlockBytes),
			cache.Fast.CacheOverhead(s.Misses(), insns, cfg.BlockBytes))
		if verbose {
			fmt.Fprintf(out, "%-22s %12s reads %d, writes %d, allocs %d, GC misses %d\n",
				"", "", s.Reads, s.Writes, s.WriteAllocs, s.GCMisses())
		}
	}
}
