;;; match: a second, deliberately different compiler — the analog of the
;;; paper's `gambit` ("another Scheme compiler, quite different from
;;; orbit"). Where tc works on raw s-expressions with association lists,
;;; match parses into tagged-vector records, drives its transformations
;;; with an explicit pattern matcher, converts to continuation-passing
;;; style (allocating continuation closures as records), and finally
;;; linearizes the CPS tree into basic blocks held in vectors. Its heap
;;; profile leans on vectors and longer-lived nodes.

;;; AST records: #(tag field ...)
(define (ast-tag n) (vector-ref n 0))

(define (mk-const v)      (vector 'const v))
(define (mk-ref v)        (vector 'ref v))
(define (mk-if c t e)     (vector 'if c t e))
(define (mk-abs vars b)   (vector 'abs vars b))
(define (mk-call f args)  (vector 'call f args))
(define (mk-prim op args) (vector 'prim op args))

(define match-prims '(+ - * car cdr cons null? eq? < =))

;;; Parse s-expressions into records.
(define (parse e)
  (cond ((symbol? e) (mk-ref e))
        ((not (pair? e)) (mk-const e))
        ((eq? (car e) 'quote) (mk-const (cadr e)))
        ((eq? (car e) 'if)
         (mk-if (parse (cadr e)) (parse (caddr e)) (parse (cadddr e))))
        ((eq? (car e) 'lambda)
         (mk-abs (cadr e) (parse (caddr e))))
        ((eq? (car e) 'let)
         ;; (let ((v e)...) body) => ((lambda (v...) body) e...)
         (mk-call (mk-abs (map car (cadr e)) (parse (caddr e)))
                  (map (lambda (b) (parse (cadr b))) (cadr e))))
        ((memq (car e) match-prims)
         (mk-prim (car e) (map parse (cdr e))))
        (else
         (mk-call (parse (car e)) (map parse (cdr e))))))

;;; A small structural pattern matcher over records, used by the
;;; simplifier: patterns are (tag p1 p2 ...) trees with '? wildcards
;;; binding positionally.
(define (rmatch pat node acc)
  (cond ((eq? pat '?) (cons node acc))
        ((symbol? pat) (if (eq? pat node) acc #f))
        ((pair? pat)
         (if (and (vector? node) (eq? (ast-tag node) (car pat)))
             (let loop ((ps (cdr pat)) (i 1) (acc acc))
               (cond ((null? ps) acc)
                     ((not acc) #f)
                     (else (loop (cdr ps) (+ i 1)
                                 (rmatch (car ps) (vector-ref node i) acc)))))
             #f))
        (else (if (equal? pat node) acc #f))))

;;; Simplification: constant-fold if over constants; collapse
;;; ((lambda () b)) and (if c x x).
(define (simplify n)
  (case (ast-tag n)
    ((const ref) n)
    ((if)
     (let ((c (simplify (vector-ref n 1)))
           (t (simplify (vector-ref n 2)))
           (e (simplify (vector-ref n 3))))
       (let ((hit (rmatch '(const ?) c '())))
         (cond (hit (if (eq? (car hit) #f) e t))
               ((equal? t e) t)
               (else (mk-if c t e))))))
    ((abs) (mk-abs (vector-ref n 1) (simplify (vector-ref n 2))))
    ((call)
     (let ((f (simplify (vector-ref n 1)))
           (args (map simplify (vector-ref n 2))))
       (if (and (null? args)
                (vector? f) (eq? (ast-tag f) 'abs)
                (null? (vector-ref f 1)))
           (vector-ref f 2)
           (mk-call f args))))
    ((prim) (mk-prim (vector-ref n 1) (map simplify (vector-ref n 2))))
    (else (error "simplify: unknown node" (ast-tag n)))))

;;; CPS conversion. Continuations are records too: either a variable
;;; reference or an abstraction of one variable.
;; Continuation variables are uninterned heap symbols, reclaimed with
;; the CPS terms that mention them.
(define (cps-var prefix) (gensym prefix))

;; cps: node x (value-record -> node) -> node
(define (cps n k)
  (case (ast-tag n)
    ((const ref) (k n))
    ((abs)
     (let ((kv (cps-var "k")))
       (k (mk-abs (cons kv (vector-ref n 1))
                  (cps (vector-ref n 2)
                       (lambda (v) (mk-call (mk-ref kv) (list v))))))))
    ((if)
     (cps (vector-ref n 1)
          (lambda (c)
            (let ((jv (cps-var "j")) (xv (cps-var "x")))
              ;; Bind a join continuation to avoid duplicating k.
              (mk-call
               (mk-abs (list jv)
                       (mk-if c
                              (cps (vector-ref n 2)
                                   (lambda (v) (mk-call (mk-ref jv) (list v))))
                              (cps (vector-ref n 3)
                                   (lambda (v) (mk-call (mk-ref jv) (list v))))))
               (list (mk-abs (list xv) (k (mk-ref xv)))))))))
    ((prim)
     (cps-args (vector-ref n 2) '()
               (lambda (vals)
                 (k (mk-prim (vector-ref n 1) vals)))))
    ((call)
     (cps (vector-ref n 1)
          (lambda (f)
            (cps-args (vector-ref n 2) '()
                      (lambda (vals)
                        (let ((rv (cps-var "r")))
                          (mk-call f (cons (mk-abs (list rv) (k (mk-ref rv)))
                                           vals))))))))
    (else (error "cps: unknown node" (ast-tag n)))))

(define (cps-args args acc k)
  (if (null? args)
      (k (reverse acc))
      (cps (car args)
           (lambda (v) (cps-args (cdr args) (cons v acc) k)))))

;;; Linearize: walk the CPS tree and emit one basic-block vector per
;;; abstraction; returns the list of blocks.
(define (linearize n)
  (let ((blocks '()))
    (define (walk n)
      (case (ast-tag n)
        ((const) 1)
        ((ref) 1)
        ((abs)
         (let ((size (walk (vector-ref n 2))))
           (set! blocks (cons (vector 'block (vector-ref n 1) size) blocks))
           1))
        ((if) (+ 1 (walk (vector-ref n 1))
                 (walk (vector-ref n 2))
                 (walk (vector-ref n 3))))
        ((prim) (fold-left (lambda (a x) (+ a (walk x))) 1 (vector-ref n 2)))
        ((call) (fold-left (lambda (a x) (+ a (walk x)))
                           (+ 1 (walk (vector-ref n 1)))
                           (vector-ref n 2)))
        (else (error "linearize: unknown node"))))
    (walk n)
    blocks))

;;; Full pipeline; returns the number of basic blocks emitted.
(define (match-compile program)
  (let* ((ast (parse program))
         (simplified (simplify ast))
         (cpsed (cps simplified (lambda (v) v)))
         (blocks (linearize cpsed)))
    (length blocks)))

;;; Corpus generation, biased differently from tc's: deeper call chains
;;; and more if-trees.
(define (match-gen depth vars)
  (let ((choice (random (if (> depth 5) 2 8))))
    (cond ((= choice 0) (random 1000))
          ((= choice 1)
           (if (null? vars) #t (list-ref vars (random (length vars)))))
          ((= choice 2)
           (list 'if (match-gen (+ depth 1) vars)
                 (match-gen (+ depth 1) vars)
                 (match-gen (+ depth 1) vars)))
          ((= choice 3)
           (let ((v (string->symbol (string-append "m" (number->string (random 40))))))
             (list 'let (list (list v (match-gen (+ depth 1) vars)))
                   (match-gen (+ depth 1) (cons v vars)))))
          ((= choice 4)
           (let ((v (string->symbol (string-append "f" (number->string (random 40))))))
             (list (list 'lambda (list v) (match-gen (+ depth 1) (cons v vars)))
                   (match-gen (+ depth 1) vars))))
          ((= choice 5)
           (list '+ (match-gen (+ depth 1) vars) (match-gen (+ depth 1) vars)))
          ((= choice 6)
           (list 'cons (match-gen (+ depth 1) vars) (match-gen (+ depth 1) vars)))
          (else
           (list 'if (list 'null? (match-gen (+ depth 1) vars))
                 (match-gen (+ depth 1) vars)
                 (match-gen (+ depth 1) vars))))))

;; Main entry: compile `scale` generated programs plus fixed ones; the
;; checksum totals emitted basic blocks.
(define (match-main scale)
  (random-seed! 141421356)
  (let ((fixed '((lambda (x) (if (null? x) 0 (+ 1 (car x))))
                 (let ((f (lambda (a b) (cons a b))))
                   (f 1 (f 2 '())))
                 (lambda (p) (if (eq? p 0) (quote zero) (quote nonzero))))))
    (let loop ((i 0) (blocks 0))
      (if (= i scale)
          (fold-left (lambda (acc p) (+ acc (match-compile p))) blocks fixed)
          (loop (+ i 1)
                (+ blocks (match-compile (match-gen 0 '()))))))))
