package workloads

import (
	"testing"

	"gcsim/internal/gc"
	"gcsim/internal/scheme"
	"gcsim/internal/vm"
)

func newMachine(t *testing.T, col gc.Collector) *vm.Machine {
	t.Helper()
	m := vm.NewLoaded(nil, col)
	m.MaxInsns = 3_000_000_000
	return m
}

func TestRegistry(t *testing.T) {
	if len(All()) != 5 {
		t.Fatalf("expected 5 paper workloads, got %d", len(All()))
	}
	for _, w := range append(All(), Styles()...) {
		if w.Source() == "" {
			t.Errorf("%s: empty source", w.Name)
		}
		if w.SourceLines() < 30 {
			t.Errorf("%s: implausibly small source (%d lines)", w.Name, w.SourceLines())
		}
		got, err := ByName(w.Name)
		if err != nil || got != w && got.Name != w.Name {
			t.Errorf("ByName(%s) failed: %v", w.Name, err)
		}
	}
	if _, err := ByName("no-such"); err == nil {
		t.Error("ByName accepted garbage")
	}
	if len(Names()) != 5 {
		t.Error("Names() wrong")
	}
}

// Each workload must run at small scale under no collection and produce a
// stable fixnum checksum.
func TestWorkloadsRunAndAreDeterministic(t *testing.T) {
	for _, w := range append(All(), Styles()...) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			run := func() (int64, uint64) {
				m := newMachine(t, gc.NewNoGC())
				v, err := w.Run(m, w.SmallScale)
				if err != nil {
					t.Fatalf("%s: %v", w.Name, err)
				}
				if !scheme.IsFixnum(v) {
					t.Fatalf("%s: checksum is not a fixnum: %s", w.Name, m.DescribeValue(v))
				}
				return scheme.FixnumValue(v), m.Mem.C.Refs()
			}
			c1, r1 := run()
			c2, r2 := run()
			if c1 != c2 || r1 != r2 {
				t.Errorf("%s: nondeterministic: (%d,%d) vs (%d,%d)", w.Name, c1, r1, c2, r2)
			}
			if r1 == 0 {
				t.Errorf("%s: no references recorded", w.Name)
			}
		})
	}
}

// The checksum must be identical under every collector: collection must
// not change program semantics.
func TestWorkloadsAgreeAcrossCollectors(t *testing.T) {
	if testing.Short() {
		t.Skip("collector sweep is slow")
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			var want int64
			for i, mk := range []func() gc.Collector{
				func() gc.Collector { return gc.NewNoGC() },
				func() gc.Collector { return gc.NewCheney(256 << 10) },
				func() gc.Collector { return gc.NewGenerational(64<<10, 1<<20) },
				func() gc.Collector { return gc.NewAggressive(32<<10, 1<<20) },
				func() gc.Collector { return gc.NewMarkSweep(512 << 10) },
			} {
				col := mk()
				m := newMachine(t, col)
				v, err := w.Run(m, w.SmallScale)
				if err != nil {
					t.Fatalf("%s under %s: %v", w.Name, col.Name(), err)
				}
				got := scheme.FixnumValue(v)
				if i == 0 {
					want = got
				} else if got != want {
					t.Errorf("%s under %s: checksum %d, want %d", w.Name, col.Name(), got, want)
				}
			}
		})
	}
}

// The style pair must compute the same total.
func TestStylesAgree(t *testing.T) {
	pair := Styles()
	m1 := newMachine(t, gc.NewNoGC())
	v1, err := pair[0].Run(m1, 30000)
	if err != nil {
		t.Fatal(err)
	}
	m2 := newMachine(t, gc.NewNoGC())
	v2, err := pair[1].Run(m2, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if scheme.FixnumValue(v1) != scheme.FixnumValue(v2) {
		t.Errorf("functional=%d imperative=%d, want equal",
			scheme.FixnumValue(v1), scheme.FixnumValue(v2))
	}
	// The functional variant must allocate far more objects than the
	// imperative one, whose allocation is a few one-time arrays.
	if m1.Mem.C.AllocObjects < 100*m2.Mem.C.AllocObjects {
		t.Errorf("functional alloc %d objects vs imperative %d: expected heavy allocation skew",
			m1.Mem.C.AllocObjects, m2.Mem.C.AllocObjects)
	}
}

// The lambda workload must grow live data monotonically (the property
// that defeats the Cheney collector, as lp did in the paper).
func TestLambdaGrowsLiveData(t *testing.T) {
	col := gc.NewCheney(512 << 10)
	m := newMachine(t, col)
	w, _ := ByName("lambda")
	if _, err := w.Run(m, 1200); err != nil {
		t.Fatal(err)
	}
	st := col.Stats()
	if st.Collections < 2 {
		t.Skipf("only %d collections at this scale", st.Collections)
	}
	if st.LiveAfterLast < 1000 {
		t.Errorf("live data after last collection = %d words; expected a growing structure", st.LiveAfterLast)
	}
}

// Workload allocation volume should dwarf its live set, as in Section 3's
// table (megabytes allocated by list churn).
func TestWorkloadsAllocateHeavily(t *testing.T) {
	for _, w := range All() {
		m := newMachine(t, gc.NewNoGC())
		if _, err := w.Run(m, w.SmallScale); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if m.Mem.C.AllocObjects < 1000 {
			t.Errorf("%s: only %d objects allocated", w.Name, m.Mem.C.AllocObjects)
		}
	}
}
