;;; prover: a rewriting tautology prover in the style of the Boyer
;;; benchmark family — the analog of the paper's `imps` theorem prover.
;;;
;;; Terms are symbols, numbers, or (op . args). Rewrite rules are stored in
;;; a table keyed by operator symbol; patterns use (? . name) variables.
;;; Rewriting is bottom-up to a fixpoint, with a memo table keyed by term
;;; identity (dynamic heap objects, so the table must rehash after every
;;; collection, as the T system's address-hashed tables did).

(define prover-rules (make-table))

(define (add-rule! pat rep)
  (let* ((op (car pat))
         (existing (table-ref prover-rules op '())))
    (table-set! prover-rules op (cons (cons pat rep) existing))))

(define (pattern-var? x) (and (pair? x) (eq? (car x) '?)))

(define (pmatch pattern term bindings)
  (cond ((pattern-var? pattern)
         (let ((hit (assq (cadr pattern) bindings)))
           (if hit
               (if (equal? (cdr hit) term) bindings #f)
               (cons (cons (cadr pattern) term) bindings))))
        ((pair? pattern)
         (if (and (pair? term) (eq? (car pattern) (car term)))
             (pmatch-args (cdr pattern) (cdr term) bindings)
             #f))
        (else (if (eq? pattern term) bindings #f))))

(define (pmatch-args pats terms bindings)
  (cond ((null? pats) (if (null? terms) bindings #f))
        ((null? terms) #f)
        (else
         (let ((b (pmatch (car pats) (car terms) bindings)))
           (if b (pmatch-args (cdr pats) (cdr terms) b) #f)))))

(define (subst rep bindings)
  (cond ((pattern-var? rep)
         (let ((hit (assq (cadr rep) bindings)))
           (if hit (cdr hit) (error "unbound pattern variable"))))
        ((pair? rep)
         (cons (subst (car rep) bindings) (subst (cdr rep) bindings)))
        (else rep)))

;; Memoized bottom-up rewriting. The memo table is keyed by the identity
;; of interior term nodes.
(define prover-memo (make-table))

(define (rewrite term)
  (if (pair? term)
      (let ((hit (table-ref prover-memo term #f)))
        (if hit
            hit
            (let ((result (rewrite-root
                           (cons (car term) (map rewrite (cdr term))))))
              (table-set! prover-memo term result)
              result)))
      term))

(define (rewrite-root term)
  (if (pair? term)
      (let loop ((candidates (table-ref prover-rules (car term) '())))
        (cond ((null? candidates) term)
              ((pmatch (caar candidates) term '())
               => (lambda (b) (rewrite (subst (cdar candidates) b))))
              (else (loop (cdr candidates)))))
      term))

;; Tautology checking on rewritten if-normal terms, tracking assumed-true
;; and assumed-false atoms.
(define (truep x true-list)  (or (eq? x 'true)  (member x true-list)))
(define (falsep x false-list) (or (eq? x 'false) (member x false-list)))

(define (tautologyp x true-list false-list)
  (cond ((truep x true-list) #t)
        ((falsep x false-list) #f)
        ((and (pair? x) (eq? (car x) 'if))
         (let ((test (cadr x)) (then (caddr x)) (alt (cadddr x)))
           (cond ((truep test true-list) (tautologyp then true-list false-list))
                 ((falsep test false-list) (tautologyp alt true-list false-list))
                 (else (and (tautologyp then (cons test true-list) false-list)
                            (tautologyp alt true-list (cons test false-list)))))))
        (else #f)))

(define (tautp term)
  ;; A fresh memo table per theorem: shared subterms within one proof are
  ;; memoized, but no live structure accumulates across proofs.
  (set! prover-memo (make-table))
  (tautologyp (rewrite term) '() '()))

;; The rule base: boolean connectives reduce to `if`, plus arithmetic and
;; list lemmas in the Boyer style.
(define (install-rules!)
  (add-rule! '(and (? p) (? q))      '(if (? p) (if (? q) true false) false))
  (add-rule! '(or (? p) (? q))       '(if (? p) true (if (? q) true false)))
  (add-rule! '(not (? p))            '(if (? p) false true))
  (add-rule! '(implies (? p) (? q))  '(if (? p) (if (? q) true false) true))
  (add-rule! '(iff (? p) (? q))      '(and (implies (? p) (? q)) (implies (? q) (? p))))
  (add-rule! '(if (if (? a) (? b) (? c)) (? d) (? e))
             '(if (? a) (if (? b) (? d) (? e)) (if (? c) (? d) (? e))))
  (add-rule! '(eqp (? x) (? x))      'true)
  (add-rule! '(lessp (? x) (? x))    'false)
  (add-rule! '(lessp (zero) (succ (? x))) 'true)
  (add-rule! '(lessp (succ (? x)) (succ (? y))) '(lessp (? x) (? y)))
  (add-rule! '(plus (zero) (? x))    '(? x))
  (add-rule! '(plus (succ (? x)) (? y)) '(succ (plus (? x) (? y))))
  (add-rule! '(times (zero) (? x))   '(zero))
  (add-rule! '(times (succ (? x)) (? y)) '(plus (? y) (times (? x) (? y))))
  (add-rule! '(difference (? x) (? x)) '(zero))
  (add-rule! '(numberp (zero))       'true)
  (add-rule! '(numberp (succ (? x))) '(numberp (? x)))
  (add-rule! '(append (nil) (? y))   '(? y))
  (add-rule! '(append (cons (? a) (? x)) (? y))
             '(cons (? a) (append (? x) (? y))))
  (add-rule! '(reverse (nil))        '(nil))
  (add-rule! '(reverse (cons (? a) (? x)))
             '(append (reverse (? x)) (cons (? a) (nil))))
  (add-rule! '(length (nil))         '(zero))
  (add-rule! '(length (cons (? a) (? x))) '(succ (length (? x))))
  (add-rule! '(memberp (? a) (nil))  'false)
  (add-rule! '(memberp (? a) (cons (? b) (? x)))
             '(or (eqp (? a) (? b)) (memberp (? a) (? x))))
  (add-rule! '(nth (zero) (? x))     '(? x))
  (add-rule! '(equal (? x) (? x))    'true)
  (add-rule! '(zerop (zero))         'true)
  (add-rule! '(zerop (succ (? x)))   'false))

;; Theorem generation: a deterministic pseudo-random mix of provable
;; tautologies and non-theorems over the rule vocabulary.
(define (church n) (if (= n 0) '(zero) (list 'succ (church (- n 1)))))

(define (gen-list n)
  (if (= n 0) '(nil) (list 'cons (list 'atom n) (gen-list (- n 1)))))

(define (gen-atom i) (list 'p i))

(define (gen-theorem i)
  (let ((v (modulo i 7)))
    (cond ((= v 0) ; (p or not p)
           (let ((a (gen-atom i)))
             (list 'or a (list 'not a))))
          ((= v 1) ; ((p and q) implies p)
           (let ((a (gen-atom i)) (b (gen-atom (+ i 1))))
             (list 'implies (list 'and a b) a)))
          ((= v 2) ; (p implies (p or q))
           (let ((a (gen-atom i)) (b (gen-atom (+ i 1))))
             (list 'implies a (list 'or a b))))
          ((= v 3) ; lessp 0 (succ n)
           (list 'lessp '(zero) (church (+ 1 (modulo i 5)))))
          ((= v 4) ; x + 0 = x via eqp/plus
           (list 'eqp (list 'plus '(zero) (church (modulo i 4)))
                 (church (modulo i 4))))
          ((= v 5) ; non-theorem: p
           (gen-atom i))
          (else   ; member of constructed list
           (list 'memberp (list 'atom 1) (gen-list (+ 1 (modulo i 4))))))))

;; Main entry: prove `scale` generated theorems, plus a few heavyweight
;; arithmetic normalizations to exercise deep rewriting. Returns the count
;; of proved theorems as a checksum.
(define (prover-main scale)
  (install-rules!)
  (let loop ((i 0) (proved 0))
    (if (= i scale)
        (begin
          ;; Deep rewrites: normalize (times n m) Church numerals.
          (let deep ((k 2) (acc proved))
            (if (> k 5)
                acc
                (deep (+ k 1)
                      (if (tautp (list 'eqp
                                       (list 'times (church k) (church 3))
                                       (list 'times (church k) (church 3))))
                          (+ acc 1)
                          acc)))))
        (loop (+ i 1)
              (if (tautp (gen-theorem i)) (+ proved 1) proved)))))
