;;; nbody: three-dimensional N-body accelerations — the analog of the
;;; paper's `nbody` (Zhao's linear-time algorithm computing the
;;; accelerations of 256 point masses distributed uniformly in a cube,
;;; starting at rest). This reproduction uses a Barnes–Hut octree, which
;;; exercises the same behaviour the paper relies on: heavy floating-point
;;; allocation (flonums are boxed, as in T), a tree rebuilt every
;;; iteration, and a handful of extremely busy global vectors that can
;;; collide in a small direct-mapped cache.

(define nbody-n 256)

;; Hot global state: structure-of-arrays body storage.
(define pos-x (make-vector nbody-n 0.0))
(define pos-y (make-vector nbody-n 0.0))
(define pos-z (make-vector nbody-n 0.0))
(define acc-x (make-vector nbody-n 0.0))
(define acc-y (make-vector nbody-n 0.0))
(define acc-z (make-vector nbody-n 0.0))
(define mass  (make-vector nbody-n 0.0))

(define (frand)
  (/ (exact->inexact (random 100000)) 100000.0))

(define (init-bodies!)
  (random-seed! 19940601)
  (let loop ((i 0))
    (if (< i nbody-n)
        (begin
          (vector-set! pos-x i (frand))
          (vector-set! pos-y i (frand))
          (vector-set! pos-z i (frand))
          (vector-set! mass i (+ 0.5 (frand)))
          (loop (+ i 1)))
        (void))))

;;; Octree nodes are 10-slot vectors:
;;;   0: total mass            1-3: center of mass (x y z)
;;;   4-6: cell center (x y z) 7: half-width
;;;   8: body index or -1      9: children (8-vector or #f)
(define (make-node cx cy cz half)
  (let ((n (make-vector 10 0.0)))
    (vector-set! n 4 cx) (vector-set! n 5 cy) (vector-set! n 6 cz)
    (vector-set! n 7 half)
    (vector-set! n 8 -1)
    (vector-set! n 9 #f)
    n))

(define (node-empty? n) (and (= (vector-ref n 8) -1) (not (vector-ref n 9))))
(define (node-leaf? n)  (and (>= (vector-ref n 8) 0) (not (vector-ref n 9))))

(define (octant-index n x y z)
  (+ (if (> x (vector-ref n 4)) 1 0)
     (if (> y (vector-ref n 5)) 2 0)
     (if (> z (vector-ref n 6)) 4 0)))

(define (make-child n oct)
  (let* ((h (/ (vector-ref n 7) 2.0))
         (cx (+ (vector-ref n 4) (if (= (modulo oct 2) 1) h (- 0.0 h))))
         (cy (+ (vector-ref n 5) (if (= (modulo (quotient oct 2) 2) 1) h (- 0.0 h))))
         (cz (+ (vector-ref n 6) (if (= (quotient oct 4) 1) h (- 0.0 h)))))
    (make-node cx cy cz h)))

(define (child-of n oct)
  (let ((kids (vector-ref n 9)))
    (let ((c (vector-ref kids oct)))
      (if c
          c
          (let ((fresh (make-child n oct)))
            (vector-set! kids oct fresh)
            fresh)))))

(define (insert-body! n i)
  (let ((x (vector-ref pos-x i)) (y (vector-ref pos-y i)) (z (vector-ref pos-z i)))
    (cond ((node-empty? n)
           (vector-set! n 8 i))
          ((node-leaf? n)
           (if (< (vector-ref n 7) 0.000000001)
               (void) ; coincident bodies: cap the tree depth
               ;; Split: push the resident body down, then insert i.
               (let ((j (vector-ref n 8)))
                 (vector-set! n 8 -1)
                 (vector-set! n 9 (make-vector 8 #f))
                 (insert-body! (child-of n (octant-index n (vector-ref pos-x j)
                                                          (vector-ref pos-y j)
                                                          (vector-ref pos-z j)))
                               j)
                 (insert-body! (child-of n (octant-index n x y z)) i))))
          (else
           (insert-body! (child-of n (octant-index n x y z)) i)))))

;; Bottom-up mass and center-of-mass summary.
(define (summarize! n)
  (cond ((node-leaf? n)
         (let ((i (vector-ref n 8)))
           (vector-set! n 0 (vector-ref mass i))
           (vector-set! n 1 (vector-ref pos-x i))
           (vector-set! n 2 (vector-ref pos-y i))
           (vector-set! n 3 (vector-ref pos-z i))))
        ((vector-ref n 9)
         (let ((kids (vector-ref n 9)))
           (let loop ((o 0) (m 0.0) (mx 0.0) (my 0.0) (mz 0.0))
             (if (= o 8)
                 (begin
                   (vector-set! n 0 m)
                   (if (> m 0.0)
                       (begin
                         (vector-set! n 1 (/ mx m))
                         (vector-set! n 2 (/ my m))
                         (vector-set! n 3 (/ mz m)))
                       (void)))
                 (let ((c (vector-ref kids o)))
                   (if c
                       (begin
                         (summarize! c)
                         (loop (+ o 1)
                               (+ m (vector-ref c 0))
                               (+ mx (* (vector-ref c 0) (vector-ref c 1)))
                               (+ my (* (vector-ref c 0) (vector-ref c 2)))
                               (+ mz (* (vector-ref c 0) (vector-ref c 3)))))
                       (loop (+ o 1) m mx my mz)))))))
        (else (void))))

(define (build-tree)
  (let ((root (make-node 0.5 0.5 0.5 0.5)))
    (let loop ((i 0))
      (if (< i nbody-n)
          (begin (insert-body! root i) (loop (+ i 1)))
          (void)))
    (summarize! root)
    root))

(define theta 0.5)
(define softening 0.0001)

;; Accumulate the acceleration on body i from cell n.
(define (accel-from n i)
  (if (or (not n) (node-empty? n) (= (vector-ref n 8) i))
      (void)
      (let* ((dx (- (vector-ref n 1) (vector-ref pos-x i)))
             (dy (- (vector-ref n 2) (vector-ref pos-y i)))
             (dz (- (vector-ref n 3) (vector-ref pos-z i)))
             (d2 (+ (+ (* dx dx) (* dy dy)) (+ (* dz dz) softening)))
             (d  (sqrt d2)))
        (if (or (node-leaf? n)
                (< (/ (* 2.0 (vector-ref n 7)) d) theta))
            ;; Far enough: treat as a point mass.
            (let ((s (/ (vector-ref n 0) (* d2 d))))
              (vector-set! acc-x i (+ (vector-ref acc-x i) (* s dx)))
              (vector-set! acc-y i (+ (vector-ref acc-y i) (* s dy)))
              (vector-set! acc-z i (+ (vector-ref acc-z i) (* s dz))))
            ;; Recurse into children.
            (let ((kids (vector-ref n 9)))
              (let loop ((o 0))
                (if (= o 8)
                    (void)
                    (begin (accel-from (vector-ref kids o) i)
                           (loop (+ o 1))))))))))

(define (compute-accels! root)
  (let loop ((i 0))
    (if (< i nbody-n)
        (begin
          (vector-set! acc-x i 0.0)
          (vector-set! acc-y i 0.0)
          (vector-set! acc-z i 0.0)
          (accel-from root i)
          (loop (+ i 1)))
        (void))))

(define dt 0.0001)

(define (drift!)
  ;; Starting at rest, a pure position update from accelerations.
  (let loop ((i 0))
    (if (< i nbody-n)
        (begin
          (vector-set! pos-x i (+ (vector-ref pos-x i) (* dt (vector-ref acc-x i))))
          (vector-set! pos-y i (+ (vector-ref pos-y i) (* dt (vector-ref acc-y i))))
          (vector-set! pos-z i (+ (vector-ref pos-z i) (* dt (vector-ref acc-z i))))
          (loop (+ i 1)))
        (void))))

;; Checksum: the magnitude-sum of accelerations, scaled to a fixnum.
(define (accel-checksum)
  (let loop ((i 0) (acc 0.0))
    (if (= i nbody-n)
        (inexact->exact (floor (* 1000.0 (log (+ 1.0 acc)))))
        (loop (+ i 1)
              (+ acc (abs (vector-ref acc-x i))
                     (abs (vector-ref acc-y i))
                     (abs (vector-ref acc-z i)))))))

;; Main entry: `scale` tree-build/force/drift iterations over 256 bodies.
(define (nbody-main scale)
  (init-bodies!)
  (let loop ((it 0))
    (if (= it scale)
        (accel-checksum)
        (let ((root (build-tree)))
          (compute-accels! root)
          (drift!)
          (loop (+ it 1))))))
