;;; thrash: a controlled reproduction of the paper's thrashing worst case
;;; and of its remedy. Two frequently-referenced vectors are placed by
;;; linear allocation either exactly one cache-size apart (so their blocks
;;; collide and "they are referenced in such a way that they frequently
;;; displace each other") or with a small extra offset (the paper's
;;; "straightforward static method": move frequently-accessed objects so
;;; that they do not collide).
;;;
;;; The entry takes the padding in words between the two vectors, so the
;;; harness chooses colliding and non-colliding placements, and an
;;; iteration count. Both placements compute the same checksum.

(define thrash-vec-len 64)

(define (thrash-main pad-words iters)
  (let* ((a (make-vector thrash-vec-len 1))
         (pad (make-vector pad-words 0))
         (b (make-vector thrash-vec-len 2)))
    ;; Keep pad live so no collector reclassifies the layout.
    (vector-set! pad 0 99)
    (let loop ((it 0) (sum 0))
      (if (= it iters)
          (+ sum (vector-ref pad 0))
          (let inner ((i 0) (s sum))
            (if (= i thrash-vec-len)
                (loop (+ it 1) s)
                ;; Alternate references into the two vectors: if they
                ;; collide, every pair of accesses displaces the other.
                (inner (+ i 1)
                       (+ s (+ (vector-ref a i) (vector-ref b i))))))))))
