// Package workloads embeds the five Scheme test programs — analogs of the
// paper's orbit, imps, lp, nbody, and gambit — plus the Section 8
// functional-versus-imperative style pair, and provides a registry for
// running them on a Machine at a configurable scale.
package workloads

import (
	"embed"
	"fmt"
	"strings"

	"gcsim/internal/scheme"
	"gcsim/internal/vm"
)

//go:embed *.scm
var sources embed.FS

// Workload describes one test program.
type Workload struct {
	// Name is the short name used by CLIs and reports.
	Name string
	// PaperProgram is the program of the paper this one substitutes for.
	PaperProgram string
	// File is the embedded source file.
	File string
	// Entry is the name of the (entry scale) procedure.
	Entry string
	// DefaultScale drives the full experiment runs; SmallScale keeps unit
	// tests and -short benchmarks quick.
	DefaultScale, SmallScale int
	// PaperScale reaches the paper's run magnitude: 2-7 billion simulated
	// instructions per run (Section 3 sizes its programs in the billions;
	// the default runs are ~30x shorter). Only the five primary workloads
	// carry one; it drives the P1 paper-tier experiment, whose traces are
	// meant to be recorded once into a trace cache and kept warm.
	PaperScale int
	// Description summarizes the program for reports.
	Description string
	// Inline, when non-empty, is the workload's Scheme text itself; File is
	// ignored. Tests use it to run purpose-built programs (e.g. ones that
	// exhaust the stack) through the standard harness.
	Inline string
}

// All returns the five paper workloads in the paper's presentation order.
func All() []*Workload {
	return []*Workload{
		{
			Name: "tc", PaperProgram: "orbit", File: "tc.scm", Entry: "tc-main",
			DefaultScale: 1200, SmallScale: 40, PaperScale: 36000,
			Description: "five-pass Scheme-subset compiler compiling a generated corpus",
		},
		{
			Name: "prover", PaperProgram: "imps", File: "prover.scm", Entry: "prover-main",
			DefaultScale: 2500, SmallScale: 60, PaperScale: 50000,
			Description: "rewriting tautology prover with memoized bottom-up rewriting",
		},
		{
			Name: "lambda", PaperProgram: "lp", File: "lambda.scm", Entry: "lambda-main",
			DefaultScale: 1000, SmallScale: 150, PaperScale: 3300,
			Description: "lambda-calculus reducer with a monotonically growing live trail",
		},
		{
			Name: "nbody", PaperProgram: "nbody", File: "nbody.scm", Entry: "nbody-main",
			DefaultScale: 3, SmallScale: 1, PaperScale: 60,
			Description: "Barnes-Hut 3-D N-body accelerations of 256 point masses",
		},
		{
			Name: "match", PaperProgram: "gambit", File: "match.scm", Entry: "match-main",
			DefaultScale: 1000, SmallScale: 40, PaperScale: 15000,
			Description: "pattern-matching CPS compiler with record (vector) nodes",
		},
	}
}

// Styles returns the Conjecture 3 pair: the same stream computation in a
// mostly-functional and an imperative style.
func Styles() []*Workload {
	return []*Workload{
		{
			Name: "styles-functional", PaperProgram: "conjecture-3", File: "styles.scm",
			Entry: "styles-main-functional", DefaultScale: 50000, SmallScale: 4000,
			Description: "stream processing with fresh batch lists (build/map/filter/fold)",
		},
		{
			Name: "styles-imperative", PaperProgram: "conjecture-3", File: "styles.scm",
			Entry: "styles-main-imperative", DefaultScale: 50000, SmallScale: 4000,
			Description: "in-place accumulation into a large scattered bucket array",
		},
	}
}

// Thrash returns the controlled thrashing micro-workload used by the X3
// extension experiment. Its entry takes two arguments (padding words and
// iterations), so experiments drive it through Load and a direct Eval
// rather than Run.
func Thrash() *Workload {
	return &Workload{
		Name: "thrash", PaperProgram: "sections 6-7 thrash case", File: "thrash.scm",
		Entry: "thrash-main", DefaultScale: 20000, SmallScale: 1000,
		Description: "two busy vectors placed to collide (or not) in a 64k cache",
	}
}

// ByName finds a workload in All() plus Styles().
func ByName(name string) (*Workload, error) {
	for _, w := range append(All(), Styles()...) {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names lists the primary workload names.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Name)
	}
	return out
}

// Source returns the workload's Scheme text.
func (w *Workload) Source() string {
	if w.Inline != "" {
		return w.Inline
	}
	data, err := sources.ReadFile(w.File)
	if err != nil {
		panic(fmt.Sprintf("workloads: %s missing: %v", w.File, err))
	}
	return string(data)
}

// SourceLines counts non-blank, non-comment source lines, for the
// Section 3 program table.
func (w *Workload) SourceLines() int {
	n := 0
	for _, line := range strings.Split(w.Source(), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, ";") {
			continue
		}
		n++
	}
	return n
}

// Load compiles and runs the workload's definitions on the machine
// (without invoking the entry point).
func (w *Workload) Load(m *vm.Machine) error {
	if _, err := m.Eval(w.Source()); err != nil {
		return fmt.Errorf("workloads: loading %s: %w", w.Name, err)
	}
	return nil
}

// Run loads the workload and invokes its entry at the given scale
// (DefaultScale if scale is 0), returning the checksum value.
func (w *Workload) Run(m *vm.Machine, scale int) (scheme.Word, error) {
	if scale == 0 {
		scale = w.DefaultScale
	}
	if err := w.Load(m); err != nil {
		return scheme.Unspec, err
	}
	v, err := m.Eval(fmt.Sprintf("(%s %d)", w.Entry, scale))
	if err != nil {
		return scheme.Unspec, fmt.Errorf("workloads: running %s: %w", w.Name, err)
	}
	return v, nil
}
