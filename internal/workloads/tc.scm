;;; tc: a Scheme-subset compiler written in Scheme — the analog of the
;;; paper's `orbit` (the T system's native compiler compiling itself).
;;;
;;; The compiler runs five passes over each input program: macro
;;; expansion, alpha-renaming with association-list environments,
;;; free-variable analysis, flat-closure conversion, and code generation
;;; to instruction lists with a peephole cleanup. Its data are short-lived
;;; lists and small association lists — the mostly-functional churn the
;;; paper's analysis attributes orbit's cache behaviour to.

;; Fresh identifiers are uninterned heap symbols (as orbit's were), so
;; they are reclaimed by the collector instead of accumulating in the
;; static area's intern table.
(define (tc-gensym prefix) (gensym prefix))

(define tc-primitives '(+ - * car cdr cons null? pair? eq? < =))

(define (tc-primitive? s) (memq s tc-primitives))

;;; Pass 1: expansion of derived forms (cond, and, or, let*) to the core
;;; (quote, if, lambda, let, application).
(define (tc-expand e)
  (cond ((not (pair? e)) e)
        ((eq? (car e) 'quote) e)
        ((eq? (car e) 'cond)
         (tc-expand-cond (cdr e)))
        ((eq? (car e) 'and)
         (cond ((null? (cdr e)) #t)
               ((null? (cddr e)) (tc-expand (cadr e)))
               (else (list 'if (tc-expand (cadr e))
                           (tc-expand (cons 'and (cddr e))) #f))))
        ((eq? (car e) 'or)
         (cond ((null? (cdr e)) #f)
               ((null? (cddr e)) (tc-expand (cadr e)))
               (else
                (let ((t (tc-gensym "t")))
                  (list 'let (list (list t (tc-expand (cadr e))))
                        (list 'if t t (tc-expand (cons 'or (cddr e)))))))))
        ((eq? (car e) 'let*)
         (let ((binds (cadr e)) (body (caddr e)))
           (if (or (null? binds) (null? (cdr binds)))
               (list 'let (map (lambda (b) (list (car b) (tc-expand (cadr b)))) binds)
                     (tc-expand body))
               (list 'let (list (list (caar binds) (tc-expand (cadar binds))))
                     (tc-expand (list 'let* (cdr binds) body))))))
        ((eq? (car e) 'lambda)
         (list 'lambda (cadr e) (tc-expand (caddr e))))
        ((eq? (car e) 'let)
         (list 'let (map (lambda (b) (list (car b) (tc-expand (cadr b)))) (cadr e))
               (tc-expand (caddr e))))
        ((eq? (car e) 'if)
         (cons 'if (map tc-expand (cdr e))))
        (else (map tc-expand e))))

(define (tc-expand-cond clauses)
  (cond ((null? clauses) '(quote unspecified))
        ((eq? (caar clauses) 'else) (tc-expand (cadar clauses)))
        (else (list 'if (tc-expand (caar clauses))
                    (tc-expand (cadar clauses))
                    (tc-expand-cond (cdr clauses))))))

;;; Pass 2: alpha-renaming. Environments are assq lists old-name -> new.
(define (tc-rename e env)
  (cond ((symbol? e)
         (let ((hit (assq e env)))
           (if hit (cdr hit) e)))
        ((not (pair? e)) e)
        ((eq? (car e) 'quote) e)
        ((eq? (car e) 'lambda)
         (let* ((fresh (map (lambda (v) (cons v (tc-gensym "v"))) (cadr e)))
                (env2 (append fresh env)))
           (list 'lambda (map cdr fresh) (tc-rename (caddr e) env2))))
        ((eq? (car e) 'let)
         (let* ((binds (cadr e))
                (fresh (map (lambda (b) (cons (car b) (tc-gensym "v"))) binds))
                (env2 (append fresh env)))
           (list 'let
                 (map (lambda (f b) (list (cdr f) (tc-rename (cadr b) env)))
                      fresh binds)
                 (tc-rename (caddr e) env2))))
        ((eq? (car e) 'if)
         (cons 'if (map (lambda (x) (tc-rename x env)) (cdr e))))
        (else (map (lambda (x) (tc-rename x env)) e))))

;;; Pass 3: free variables (the program is alpha-renamed, so no shadowing).
(define (tc-set-union a b)
  (cond ((null? a) b)
        ((memq (car a) b) (tc-set-union (cdr a) b))
        (else (cons (car a) (tc-set-union (cdr a) b)))))

(define (tc-set-minus a b)
  (filter (lambda (x) (not (memq x b))) a))

(define (tc-free e)
  (cond ((symbol? e)
         (if (tc-primitive? e) '() (list e)))
        ((not (pair? e)) '())
        ((eq? (car e) 'quote) '())
        ((eq? (car e) 'lambda)
         (tc-set-minus (tc-free (caddr e)) (cadr e)))
        ((eq? (car e) 'let)
         (tc-set-union
          (fold-left (lambda (acc b) (tc-set-union (tc-free (cadr b)) acc))
                     '() (cadr e))
          (tc-set-minus (tc-free (caddr e)) (map car (cadr e)))))
        ((eq? (car e) 'if)
         (fold-left (lambda (acc x) (tc-set-union (tc-free x) acc)) '() (cdr e)))
        (else
         (fold-left (lambda (acc x) (tc-set-union (tc-free x) acc)) '() e))))

;;; Pass 4: closure conversion — lambdas become
;;; (%closure (lambda (env . args) body') free...) with free variables
;;; rewritten to (%env-ref i).
(define (tc-close e)
  (cond ((not (pair? e)) e)
        ((eq? (car e) 'quote) e)
        ((eq? (car e) 'lambda)
         (let* ((free (tc-free e))
                (body (tc-close (caddr e)))
                (rewritten (tc-subst-free body free 0)))
           (cons '%closure
                 (cons (list 'lambda (cons '%env (cadr e)) rewritten)
                       free))))
        ((eq? (car e) 'let)
         (list 'let (map (lambda (b) (list (car b) (tc-close (cadr b)))) (cadr e))
               (tc-close (caddr e))))
        ((eq? (car e) 'if)
         (cons 'if (map tc-close (cdr e))))
        (else (map tc-close e))))

(define (tc-subst-free e free i)
  (if (null? free)
      e
      (tc-subst-free (tc-subst1 e (car free) i) (cdr free) (+ i 1))))

(define (tc-subst1 e v i)
  (cond ((eq? e v) (list '%env-ref i))
        ((not (pair? e)) e)
        ((eq? (car e) 'quote) e)
        (else (map (lambda (x) (tc-subst1 x v i)) e))))

;;; Pass 5: code generation to a list of instructions.
(define (tc-codegen e)
  (cond ((symbol? e) (list (list 'ref e)))
        ((not (pair? e)) (list (list 'const e)))
        ((eq? (car e) 'quote) (list (list 'const (cadr e))))
        ((eq? (car e) '%env-ref) (list (list 'env-ref (cadr e))))
        ((eq? (car e) '%closure)
         (let ((body-code (tc-codegen (caddr (cadr e)))))
           (append
            (apply append (map tc-codegen (cddr e)))
            (list (list 'make-closure (length (cddr e)) body-code)))))
        ((eq? (car e) 'if)
         (let ((lt (tc-gensym "L")) (le (tc-gensym "L")))
           (append (tc-codegen (cadr e))
                   (list (list 'branch-false lt))
                   (tc-codegen (caddr e))
                   (list (list 'jump le) (list 'label lt))
                   (tc-codegen (cadddr e))
                   (list (list 'label le)))))
        ((eq? (car e) 'let)
         (append
          (apply append
                 (map (lambda (b) (append (tc-codegen (cadr b))
                                          (list (list 'bind (car b)))))
                      (cadr e)))
          (tc-codegen (caddr e))
          (list (list 'unbind (length (cadr e))))))
        ((tc-primitive? (car e))
         (append (apply append (map tc-codegen (cdr e)))
                 (list (list 'prim (car e) (length (cdr e))))))
        (else
         (append (apply append (map tc-codegen e))
                 (list (list 'call (- (length e) 1)))))))

;;; Peephole: drop (jump L) immediately followed by (label L), and fold
;;; (const c) (branch-false L) when c is a known constant.
(define (tc-peephole code)
  (cond ((null? code) '())
        ((and (pair? (cdr code))
              (eq? (caar code) 'jump)
              (eq? (car (cadr code)) 'label)
              (eq? (cadr (car code)) (cadr (cadr code))))
         (cons (cadr code) (tc-peephole (cddr code))))
        ((and (pair? (cdr code))
              (eq? (caar code) 'const)
              (eq? (car (cadr code)) 'branch-false)
              (not (eq? (cadr (car code)) #f)))
         (tc-peephole (cddr code)))
        (else (cons (car code) (tc-peephole (cdr code))))))

;;; Full pipeline.
(define (tc-compile program)
  (tc-peephole
   (tc-codegen
    (tc-close
     (tc-rename
      (tc-expand program)
      '())))))

;;; Corpus: a deterministic generator of valid mini-language programs plus
;;; a fixed corpus of realistic procedures.
(define (gen-expr depth vars)
  (let ((choice (random (if (> depth 4) 3 10))))
    (cond ((< choice 2) (random 100))
          ((and (= choice 2) (not (null? vars)))
           (list-ref vars (random (length vars))))
          ((= choice 2) (random 100))
          ((= choice 3)
           (list 'if (gen-expr (+ depth 1) vars)
                 (gen-expr (+ depth 1) vars)
                 (gen-expr (+ depth 1) vars)))
          ((= choice 4)
           (let ((v (string->symbol (string-append "x" (number->string (random 50))))))
             (list 'let (list (list v (gen-expr (+ depth 1) vars)))
                   (gen-expr (+ depth 1) (cons v vars)))))
          ((= choice 5)
           (let ((v (string->symbol (string-append "a" (number->string (random 50))))))
             (list (list 'lambda (list v) (gen-expr (+ depth 1) (cons v vars)))
                   (gen-expr (+ depth 1) vars))))
          ((= choice 6)
           (list 'cond (list (gen-expr (+ depth 1) vars)
                             (gen-expr (+ depth 1) vars))
                 (list 'else (gen-expr (+ depth 1) vars))))
          ((= choice 7)
           (list 'and (gen-expr (+ depth 1) vars) (gen-expr (+ depth 1) vars)))
          ((= choice 8)
           (list 'or (gen-expr (+ depth 1) vars) (gen-expr (+ depth 1) vars)))
          (else
           (list (if (= (random 2) 0) '+ 'cons)
                 (gen-expr (+ depth 1) vars)
                 (gen-expr (+ depth 1) vars))))))

(define tc-fixed-corpus
  '((lambda (lst)
      (let ((go (lambda (l acc)
                  (if (null? l) acc (cons (car l) acc)))))
        (go lst '())))
    (lambda (n)
      (let* ((a (+ n 1)) (b (* a a)))
        (cond ((< b 10) (- b))
              ((= b 100) 0)
              (else (+ a b)))))
    (lambda (x y)
      (and (pair? x) (or (eq? (car x) y) (null? y))))
    (lambda (t)
      (if (pair? t)
          (cons ((lambda (l) (car l)) t)
                ((lambda (r) (cdr r)) t))
          (quote leaf)))))

;; Main entry: compile the fixed corpus plus `scale` generated programs;
;; the checksum is the total number of instructions emitted.
(define (tc-main scale)
  (random-seed! 577215664)
  (let loop ((i 0) (insns 0))
    (if (= i scale)
        (fold-left (lambda (acc p) (+ acc (length (tc-compile p))))
                   insns tc-fixed-corpus)
        (loop (+ i 1)
              (+ insns (length (tc-compile (gen-expr 0 '()))))))))
