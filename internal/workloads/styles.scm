;;; styles: the Section 8 / Conjecture 3 experiment ("allocation can be
;;; faster than mutation"). The same record-stream computation is written
;;; twice:
;;;
;;;   functional: records are processed in batches of freshly allocated
;;;   lists (build, map, filter, fold). Every cons lands just behind the
;;;   allocation wave's crest and is consumed while still in the cache;
;;;   under write-validate, the program's write misses are all unpenalized
;;;   allocation claims.
;;;
;;;   imperative: records update per-bucket aggregates (sum, count, max)
;;;   held in large arrays, in place, at pseudo-random slots — the
;;;   canonical analytics loop in an imperative language. Each kept record
;;;   performs three read-modify-writes whose locality is a matter of
;;;   chance; once the arrays exceed the cache, most of those reads fetch.
;;;
;;; Both variants consume the same record stream and produce the same
;;; checksum (total kept sum plus kept count). Conjecture 3 is a
;;; conjecture, not a measurement, in the paper; this pair isolates the
;;; mechanism the paper's intuitive argument rests on.

(define styles-batch 64)
(define styles-buckets 65536) ; 3 aggregate arrays x 512 KB

(define (record-value i) (modulo (* i 40503) 997))
(define (transform v) (modulo (* v 31) 1009))
(define (keep? v) (odd? v))
(define (bucket-of i) (modulo (* i 2654435761) styles-buckets))

;;; -------- Functional variant: fresh batch lists, map/filter/fold. -----
(define (build-batch start len)
  (let loop ((k (- len 1)) (acc '()))
    (if (< k 0)
        acc
        (loop (- k 1) (cons (record-value (+ start k)) acc)))))

(define (styles-functional n)
  (let loop ((i 0) (total 0) (count 0))
    (if (>= i n)
        (+ total count)
        (let* ((len (min styles-batch (- n i)))
               (batch (build-batch i len))
               (mapped (map1 transform batch))
               (kept (filter keep? mapped))
               (s (fold-left + 0 kept)))
          (loop (+ i styles-batch) (+ total s) (+ count (length kept)))))))

;;; -------- Imperative variant: in-place per-bucket aggregates. ----------
(define (styles-imperative n)
  (let ((sums   (make-vector styles-buckets 0))
        (counts (make-vector styles-buckets 0))
        (maxs   (make-vector styles-buckets 0)))
    (let loop ((i 0) (total 0) (count 0))
      (if (>= i n)
          (+ total count)
          (let ((v (transform (record-value i))))
            (if (keep? v)
                (let ((b (bucket-of i)))
                  (vector-set! sums b (+ (vector-ref sums b) v))
                  (vector-set! counts b (+ (vector-ref counts b) 1))
                  (if (> v (vector-ref maxs b))
                      (vector-set! maxs b v)
                      (void))
                  (loop (+ i 1) (+ total v) (+ count 1)))
                (loop (+ i 1) total count)))))))

;; Main entries; both return the same total.
(define (styles-main-functional scale) (styles-functional scale))
(define (styles-main-imperative scale) (styles-imperative scale))
