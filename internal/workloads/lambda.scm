;;; lambda: a λ-calculus reduction engine — the analog of the paper's `lp`.
;;;
;;; Terms use de Bruijn indices: (var n), (lam body), (app fun arg). The
;;; engine first typechecks a simply-typed term, then applies normal-order
;;; β-reduction steps to a non-normalizing term. Like lp, it accumulates a
;;; monotonically growing live structure (a trail of snapshots of the
;;; reduced term), which is what defeats a non-generational semispace
;;; collector: every collection must copy the whole growing trail.

(define (mk-var n)   (list 'var n))
(define (mk-lam b)   (list 'lam b))
(define (mk-app f a) (list 'app f a))

(define (term-kind t) (car t))

;; shift: add d to all free variables >= cutoff c.
(define (shift t d c)
  (case (term-kind t)
    ((var) (let ((n (cadr t)))
             (if (>= n c) (mk-var (+ n d)) t)))
    ((lam) (mk-lam (shift (cadr t) d (+ c 1))))
    (else  (mk-app (shift (cadr t) d c) (shift (caddr t) d c)))))

;; subst-term: replace variable j with s in t.
(define (subst-term t j s)
  (case (term-kind t)
    ((var) (let ((n (cadr t)))
             (cond ((= n j) s)
                   (else t))))
    ((lam) (mk-lam (subst-term (cadr t) (+ j 1) (shift s 1 0))))
    (else  (mk-app (subst-term (cadr t) j s)
                   (subst-term (caddr t) j s)))))

;; beta: ((lam b) a) => shift(-1) of b[0 := shift(1) a].
(define (beta body arg)
  (shift (subst-term body 0 (shift arg 1 0)) -1 0))

;; One normal-order reduction step; returns #f at normal form.
(define (step t)
  (case (term-kind t)
    ((var) #f)
    ((lam) (let ((b (step (cadr t))))
             (if b (mk-lam b) #f)))
    (else
     (let ((f (cadr t)) (a (caddr t)))
       (if (eq? (term-kind f) 'lam)
           (beta (cadr f) a)
           (let ((f2 (step f)))
             (if f2
                 (mk-app f2 a)
                 (let ((a2 (step a)))
                   (if a2 (mk-app f a2) #f)))))))))

(define (term-size t)
  (case (term-kind t)
    ((var) 1)
    ((lam) (+ 1 (term-size (cadr t))))
    (else  (+ 1 (term-size (cadr t)) (term-size (caddr t))))))

;;; Simply-typed fragment: types are 'o or (arrow t1 t2); terms carry
;;; explicit domain annotations: (tvar n), (tlam type body), (tapp f a).
(define (type-equal? a b)
  (cond ((and (symbol? a) (symbol? b)) (eq? a b))
        ((and (pair? a) (pair? b))
         (and (type-equal? (cadr a) (cadr b))
              (type-equal? (caddr a) (caddr b))))
        (else #f)))

(define (typecheck t env)
  (case (term-kind t)
    ((tvar) (list-ref env (cadr t)))
    ((tlam) (let ((dom (cadr t)))
              (list 'arrow dom (typecheck (caddr t) (cons dom env)))))
    (else
     (let ((ft (typecheck (cadr t) env))
           (at (typecheck (caddr t) env)))
       (if (and (pair? ft) (type-equal? (cadr ft) at))
           (caddr ft)
           (error "lambda: ill-typed application"))))))

;; Build a well-typed tower: ((λx:o→o. λy:o. x (x y)) applied k times.
(define (typed-tower k)
  (if (= k 0)
      '(tlam o (tvar 0))
      '(tlam (arrow o o) (tlam o (tapp (tvar 1) (tapp (tvar 1) (tvar 0)))))))

;;; The non-normalizing growth term: (λx. x x z) (λx. x x z) grows without
;;; bound under normal-order reduction.
(define (growth-term)
  (let ((dup (mk-lam (mk-app (mk-app (mk-var 0) (mk-var 0)) (mk-var 1)))))
    (mk-lam (mk-app dup dup))))

;; Church-numeral workout: normalize (n m) for small Church numerals,
;; exercising full normalization on terms that do terminate.
(define (church-num n)
  (define (body k) (if (= k 0) (mk-var 0) (mk-app (mk-var 1) (body (- k 1)))))
  (mk-lam (mk-lam (body n))))

(define (normalize t limit)
  (let loop ((t t) (n 0))
    (if (= n limit)
        t
        (let ((t2 (step t)))
          (if t2 (loop t2 (+ n 1)) t)))))

;; Main entry: typecheck, normalize Church arithmetic, then run `scale`
;; β-reductions of the growth term, keeping every 16th snapshot live in a
;; trail — the monotonically growing structure that forces the Cheney
;; collector to recopy ever more data, as lp's did. Returns a size
;; checksum.
(define (lambda-main scale)
  ;; 1. Typecheck the typed fragment.
  (let ((ty (typecheck (typed-tower 1) '())))
    (if (not (pair? ty)) (error "lambda: typecheck failed")))
  ;; 2. Terminating normalizations: 3^2 as Church numerals.
  (let* ((three (church-num 3))
         (two (church-num 2))
         (nine (normalize (mk-app two three) 10000)))
    (if (not (eq? (term-kind nine) 'lam))
        (error "lambda: Church normalization failed"))
    ;; 3. The monotonically growing reduction with a live trail.
    (let loop ((t (growth-term)) (i 0) (trail '()) (trail-size 0))
      (if (= i scale)
          (+ (term-size t) trail-size (term-size nine))
          (let ((t2 (step t)))
            (if (not t2)
                (error "lambda: growth term normalized?!")
                (if (= (modulo i 16) 0)
                    (loop t2 (+ i 1) (cons t trail)
                          (+ trail-size 1))
                    (loop t2 (+ i 1) trail trail-size))))))))
